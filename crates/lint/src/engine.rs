//! The driver: lint one source string, a set of in-memory files, or the
//! whole workspace — with an optional incremental cache.
//!
//! Linting is two-phase:
//!
//! 1. **analyze** ([`analyze_source`]) — per file, pure: lex, parse the
//!    item tree, run every token-layer rule, collect allow directives and
//!    extract the function facts the graph layer needs. The result
//!    ([`FileAnalysis`]) depends only on the file's bytes, which is what
//!    makes it cacheable by content hash.
//! 2. **finish** ([`lint_files`] / [`lint_workspace`]) — once: aggregate
//!    all facts into a [`Workspace`], run the graph-layer rules, then
//!    suppress both layers' findings against the allows and flag the stale
//!    ones. Suppression must come *after* the workspace pass — an allow for
//!    a graph rule is only "used" once the graph has been consulted.
//!
//! The cache ([`lint_workspace_cached`]) keys each file by an FNV-1a hash
//! of its contents and stores the full `FileAnalysis` — so a warm run
//! re-lexes nothing and still replays the workspace pass exactly (facts
//! from unchanged files are as good as fresh ones).

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::allow::{collect_allows, Allow, ALLOW_RULE};
use crate::diag::{Diagnostic, Severity};
use crate::graph::{extract_facts, FnFact, Workspace};
use crate::parser::parse;
use crate::rules::{all_rules, is_known_rule, workspace_rules};
use crate::source::{classify, FileCtx, FileView};

mod cache;

pub use cache::CacheStats;

/// Directory names never descended into. `fixtures` holds the linter's own
/// known-bad corpus; `target` and `results` are build/bench artefacts;
/// `vendor` is third-party and exempt by policy.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "vendor",
    "fixtures",
    "results",
    "node_modules",
];

/// Everything phase 1 learns about one file. Pure function of the file's
/// bytes (plus its path classification), hence cacheable.
#[derive(Debug, Clone)]
pub struct FileAnalysis {
    /// Classification of the file.
    pub ctx: FileCtx,
    /// FNV-1a hash of the source bytes.
    pub hash: u64,
    /// Raw token-layer findings, pre-suppression.
    pub raw: Vec<Diagnostic>,
    /// Well-formed allow directives.
    pub allows: Vec<Allow>,
    /// `allow-discipline` errors (malformed or unknown-rule directives).
    pub allow_errors: Vec<Diagnostic>,
    /// Function facts for the graph layer.
    pub fns: Vec<FnFact>,
}

/// Outcome of linting one file.
#[derive(Debug, Clone, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings, including `allow-discipline` errors.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a justified allow.
    pub suppressed: usize,
    /// Justified allows that silenced at least one finding.
    pub allows_used: usize,
}

/// Aggregate over a workspace run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every unsuppressed finding, sorted by file and position.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned (vendor/fixtures excluded).
    pub files: usize,
    /// Findings silenced by justified allows, workspace-wide.
    pub suppressed: usize,
    /// Justified allows that fired.
    pub allows_used: usize,
}

impl Report {
    /// Whether the run found nothing (the `--deny` success condition).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

/// FNV-1a over the source bytes — the cache key.
#[must_use]
pub fn fnv1a(src: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in src.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Phase 1: analyzes one source string under an explicit classification.
#[must_use]
pub fn analyze_source(ctx: &FileCtx, src: &str) -> FileAnalysis {
    let view = FileView::new(ctx, src);
    let tree = parse(&view);
    let mut raw: Vec<Diagnostic> = Vec::new();
    for rule in all_rules() {
        rule.check(&view, &tree, &mut raw);
    }
    let (allows, mut allow_errors) = collect_allows(&view);

    // Unknown rule names are errors, and such allows never match anything.
    for a in &allows {
        if !is_known_rule(&a.rule) {
            allow_errors.push(Diagnostic {
                rule: ALLOW_RULE,
                severity: Severity::Error,
                path: ctx.path.clone(),
                line: a.comment_line,
                col: a.col,
                message: format!("allow names unknown rule `{}` (see --list-rules)", a.rule),
            });
        }
    }

    let fns = extract_facts(&view, &tree, &allows);
    FileAnalysis {
        ctx: ctx.clone(),
        hash: fnv1a(src),
        raw,
        allows,
        allow_errors,
        fns,
    }
}

/// Phase 2: aggregates analyses into a workspace, runs the graph rules,
/// suppresses and reports. Also returns, per analysis, which of its allows
/// fired (for the staleness audit).
fn finish(analyses: &[FileAnalysis]) -> (Report, Vec<Vec<bool>>) {
    let all_fns: Vec<FnFact> = analyses.iter().flat_map(|a| a.fns.clone()).collect();
    let ws = Workspace::build(all_fns);
    let mut ws_by_path: BTreeMap<&str, Vec<Diagnostic>> = BTreeMap::new();
    for rule in workspace_rules() {
        let mut out = Vec::new();
        rule.check(&ws, &mut out);
        for d in out {
            ws_by_path
                .entry(match analyses.iter().find(|a| a.ctx.path == d.path) {
                    Some(a) => a.ctx.path.as_str(),
                    None => continue,
                })
                .or_default()
                .push(d);
        }
    }

    let mut report = Report {
        files: analyses.len(),
        ..Report::default()
    };
    let mut used_per_file: Vec<Vec<bool>> = Vec::with_capacity(analyses.len());
    for a in analyses {
        let mut used = vec![false; a.allows.len()];
        let mut diagnostics = a.allow_errors.clone();
        let findings = a.raw.iter().chain(
            ws_by_path
                .get(a.ctx.path.as_str())
                .map(Vec::as_slice)
                .unwrap_or_default(),
        );
        for d in findings {
            let matched = a
                .allows
                .iter()
                .enumerate()
                .find(|(_, al)| al.rule == d.rule && al.target_line == d.line);
            match matched {
                Some((i, _)) => {
                    used[i] = true;
                    report.suppressed += 1;
                }
                None => diagnostics.push(d.clone()),
            }
        }
        // A suppression that suppresses nothing is stale and must go.
        for (al, &u) in a.allows.iter().zip(&used) {
            if !u && is_known_rule(&al.rule) {
                diagnostics.push(Diagnostic {
                    rule: ALLOW_RULE,
                    severity: Severity::Error,
                    path: a.ctx.path.clone(),
                    line: al.comment_line,
                    col: al.col,
                    message: format!(
                        "unused allow for `{}`: nothing on line {} triggers it — remove the stale \
                         suppression",
                        al.rule, al.target_line
                    ),
                });
            }
        }
        report.allows_used += used.iter().filter(|&&u| u).count();
        report.diagnostics.append(&mut diagnostics);
        used_per_file.push(used);
    }
    report
        .diagnostics
        .sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    (report, used_per_file)
}

/// Lints one source string through the whole pipeline — both layers, with
/// the workspace consisting of just this file. Fixtures and proptests call
/// this directly.
#[must_use]
pub fn lint_source(ctx: &FileCtx, src: &str) -> FileOutcome {
    let analysis = analyze_source(ctx, src);
    let (report, _) = finish(std::slice::from_ref(&analysis));
    FileOutcome {
        diagnostics: report.diagnostics,
        suppressed: report.suppressed,
        allows_used: report.allows_used,
    }
}

/// Lints a set of in-memory files as one workspace — the multi-file fixture
/// entry point: cross-file rules (lock cycles, transitive panics) see all
/// of them at once.
#[must_use]
pub fn lint_files(files: &[(FileCtx, String)]) -> Report {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(ctx, src)| analyze_source(ctx, src))
        .collect();
    finish(&analyses).0
}

/// Walks `root` and lints every `.rs` file outside the skipped directories
/// (`target`, `vendor`, `fixtures`, …).
///
/// # Errors
/// Propagates I/O errors from the directory walk; unreadable individual
/// files are skipped (the build would have failed on them first).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    lint_workspace_cached(root, None).map(|(r, _)| r)
}

/// [`lint_workspace`] with an incremental cache: analyses of files whose
/// content hash matches the cache are reused without re-lexing; the cache
/// file is rewritten after the run. A missing, stale-versioned or corrupt
/// cache degrades to a cold run — never to an error.
///
/// # Errors
/// Propagates I/O errors from the directory walk (not from the cache).
pub fn lint_workspace_cached(
    root: &Path,
    cache_path: Option<&Path>,
) -> io::Result<(Report, CacheStats)> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let cached = cache_path.map(cache::load).unwrap_or_default();
    let mut stats = CacheStats::default();
    let mut analyses = Vec::with_capacity(files.len());
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let hash = fnv1a(&src);
        if let Some(hit) = cached.get(&rel).filter(|c| c.hash == hash) {
            stats.hits += 1;
            analyses.push(hit.clone());
        } else {
            stats.misses += 1;
            analyses.push(analyze_source(&classify(&rel), &src));
        }
    }
    if let Some(p) = cache_path {
        // Best-effort: an unwritable cache costs the next run its warmth,
        // nothing else.
        let _ = cache::store(p, &analyses);
    }
    Ok((finish(&analyses).0, stats))
}

/// One allow directive with its workspace location and whether it fired on
/// the current sources — the staleness audit behind `--list-allows`.
#[derive(Debug, Clone)]
pub struct AllowAudit {
    /// Workspace-relative path of the file carrying the directive.
    pub path: String,
    /// The directive.
    pub allow: Allow,
    /// Whether it suppressed at least one finding this run. A `false` here
    /// is reported as stale even without `--deny`.
    pub used: bool,
}

/// Audits every allow in a set of in-memory files: runs the full two-layer
/// pipeline and marks each directive used or stale.
#[must_use]
pub fn audit_allows(files: &[(FileCtx, String)]) -> Vec<AllowAudit> {
    let analyses: Vec<FileAnalysis> = files
        .iter()
        .map(|(ctx, src)| analyze_source(ctx, src))
        .collect();
    let (_, used) = finish(&analyses);
    let mut out = Vec::new();
    for (a, flags) in analyses.iter().zip(&used) {
        for (al, &u) in a.allows.iter().zip(flags) {
            out.push(AllowAudit {
                path: a.ctx.path.clone(),
                allow: al.clone(),
                used: u,
            });
        }
    }
    out
}

/// [`audit_allows`] over the workspace on disk.
///
/// # Errors
/// Propagates I/O errors from the directory walk.
pub fn audit_workspace_allows(root: &Path) -> io::Result<Vec<AllowAudit>> {
    let mut paths = Vec::new();
    walk(root, &mut paths)?;
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((classify(&rel), src));
    }
    Ok(audit_allows(&files))
}

/// Walks `root` and returns every well-formed allow directive as
/// `(workspace-relative path, allow)` pairs, in file order.
///
/// # Errors
/// Propagates I/O errors from the directory walk.
pub fn collect_workspace_allows(root: &Path) -> io::Result<Vec<(String, Allow)>> {
    Ok(audit_workspace_allows(root)?
        .into_iter()
        .map(|a| (a.path, a.allow))
        .collect())
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "fn f() {\n    x.unwrap() // itspq-lint: allow(no-panic-in-lib, \"x seeded above\")\n}\n";
        let out = lint_source(&ctx, src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "fn f() {\n    x.unwrap() // itspq-lint: allow(lock-scope, \"wrong rule\")\n}\n";
        let out = lint_source(&ctx, src);
        // The unwrap still fires AND the allow is reported unused.
        assert_eq!(out.diagnostics.len(), 2);
        assert!(out.diagnostics.iter().any(|d| d.rule == "no-panic-in-lib"));
        assert!(out.diagnostics.iter().any(|d| d.rule == ALLOW_RULE));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "// itspq-lint: allow(no-such-rule, \"hm\")\nfn f() {}\n";
        let out = lint_source(&ctx, src);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_an_error() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "// itspq-lint: allow(no-panic-in-lib, \"stale\")\nfn f() { clean(); }\n";
        let out = lint_source(&ctx, src);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("unused allow"));
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); panic!(); }\n";
        let out = lint_source(&ctx, src);
        let lines: Vec<u32> = out.diagnostics.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn lint_files_sees_cross_file_lock_cycles() {
        let files = vec![
            (
                classify("crates/core/src/a.rs"),
                "fn ab(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); g.m(h); }\n"
                    .to_string(),
            ),
            (
                classify("crates/core/src/b.rs"),
                "fn ba(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); g.m(h); }\n"
                    .to_string(),
            ),
        ];
        let report = lint_files(&files);
        assert!(
            report.diagnostics.iter().any(|d| d.rule == "lock-order"),
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn workspace_rule_allow_is_used_not_stale() {
        // An allow on a lock-order witness line must count as used — which
        // requires suppression to run after the workspace pass.
        let a = "\
fn ab(&self) {\n\
    let g = self.alpha.lock();\n\
    let h = self.beta.lock(); // itspq-lint: allow(lock-order, \"a and b never race\")\n\
    g.m(h);\n\
}\n";
        let b = "fn ba(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); g.m(h); }\n";
        let files = vec![
            (classify("crates/core/src/a.rs"), a.to_string()),
            (classify("crates/core/src/b.rs"), b.to_string()),
        ];
        let report = lint_files(&files);
        // The cycle's one witness is suppressed; no stale-allow error.
        assert!(
            !report.diagnostics.iter().any(|d| d.rule == ALLOW_RULE),
            "{:?}",
            report.diagnostics
        );
        assert!(report.suppressed >= 1);
        let audits = audit_allows(&files);
        assert_eq!(audits.len(), 1);
        assert!(audits[0].used);
    }

    #[test]
    fn audit_reports_stale_allows_without_deny() {
        let files = vec![(
            classify("crates/core/src/a.rs"),
            "// itspq-lint: allow(no-panic-in-lib, \"was needed once\")\nfn f() { clean(); }\n"
                .to_string(),
        )];
        let audits = audit_allows(&files);
        assert_eq!(audits.len(), 1);
        assert!(!audits[0].used);
    }
}
