//! The driver: lint one source string, or walk the workspace.
//!
//! [`lint_source`] is the pure core (fixtures and proptests call it
//! directly); [`lint_workspace`] walks a directory tree, classifies each
//! `.rs` file and aggregates a [`Report`].

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::allow::{collect_allows, Allow, ALLOW_RULE};
use crate::diag::{Diagnostic, Severity};
use crate::rules::{all_rules, is_known_rule};
use crate::source::{classify, FileCtx, FileView};

/// Directory names never descended into. `fixtures` holds the linter's own
/// known-bad corpus; `target` and `results` are build/bench artefacts;
/// `vendor` is third-party and exempt by policy.
const SKIP_DIRS: &[&str] = &[
    "target",
    ".git",
    "vendor",
    "fixtures",
    "results",
    "node_modules",
];

/// Outcome of linting one file.
#[derive(Debug, Clone, Default)]
pub struct FileOutcome {
    /// Unsuppressed findings, including `allow-discipline` errors.
    pub diagnostics: Vec<Diagnostic>,
    /// Findings silenced by a justified allow.
    pub suppressed: usize,
    /// Justified allows that silenced at least one finding.
    pub allows_used: usize,
}

/// Aggregate over a workspace run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every unsuppressed finding, sorted by file and position.
    pub diagnostics: Vec<Diagnostic>,
    /// Files scanned (vendor/fixtures excluded).
    pub files: usize,
    /// Findings silenced by justified allows, workspace-wide.
    pub suppressed: usize,
    /// Justified allows that fired.
    pub allows_used: usize,
}

impl Report {
    /// Whether the run found nothing (the `--deny` success condition).
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of error-severity findings.
    #[must_use]
    pub fn errors(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }
}

/// Lints one source string under an explicit classification. This is the
/// whole pipeline: lex, run every rule, parse allow directives, suppress,
/// then report unknown/unused allows as `allow-discipline` errors.
#[must_use]
pub fn lint_source(ctx: &FileCtx, src: &str) -> FileOutcome {
    let view = FileView::new(ctx, src);
    let mut raw: Vec<Diagnostic> = Vec::new();
    for rule in all_rules() {
        rule.check(&view, &mut raw);
    }
    let (allows, mut diagnostics) = collect_allows(&view);

    // Unknown rule names are errors, and such allows never match anything.
    for a in &allows {
        if !is_known_rule(&a.rule) {
            diagnostics.push(Diagnostic {
                rule: ALLOW_RULE,
                severity: Severity::Error,
                path: ctx.path.clone(),
                line: a.comment_line,
                col: a.col,
                message: format!("allow names unknown rule `{}` (see --list-rules)", a.rule),
            });
        }
    }

    let mut used = vec![false; allows.len()];
    let mut suppressed = 0usize;
    for d in raw {
        let matched = allows
            .iter()
            .enumerate()
            .find(|(_, a)| a.rule == d.rule && a.target_line == d.line);
        match matched {
            Some((i, _)) => {
                used[i] = true;
                suppressed += 1;
            }
            None => diagnostics.push(d),
        }
    }

    // A suppression that suppresses nothing is stale and must go.
    for (a, used) in allows.iter().zip(&used) {
        if !used && is_known_rule(&a.rule) {
            diagnostics.push(Diagnostic {
                rule: ALLOW_RULE,
                severity: Severity::Error,
                path: ctx.path.clone(),
                line: a.comment_line,
                col: a.col,
                message: format!(
                    "unused allow for `{}`: nothing on line {} triggers it — remove the stale \
                     suppression",
                    a.rule, a.target_line
                ),
            });
        }
    }

    diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    let allows_used = used.iter().filter(|&&u| u).count();
    FileOutcome {
        diagnostics,
        suppressed,
        allows_used,
    }
}

/// Walks `root` and lints every `.rs` file outside the skipped directories
/// (`target`, `vendor`, `fixtures`, …).
///
/// # Errors
/// Propagates I/O errors from the directory walk; unreadable individual
/// files are skipped (the build would have failed on them first).
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut report = Report::default();
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = classify(&rel);
        let outcome = lint_source(&ctx, &src);
        report.files += 1;
        report.suppressed += outcome.suppressed;
        report.allows_used += outcome.allows_used;
        report.diagnostics.extend(outcome.diagnostics);
    }
    Ok(report)
}

/// Walks `root` and returns every well-formed allow directive as
/// `(workspace-relative path, allow)` pairs, in file order. Backs the CLI's
/// `--list-allows`: the living inventory of everywhere the workspace claims
/// an invariant the linter cannot see.
///
/// # Errors
/// Propagates I/O errors from the directory walk.
pub fn collect_workspace_allows(root: &Path) -> io::Result<Vec<(String, Allow)>> {
    let mut files = Vec::new();
    walk(root, &mut files)?;
    files.sort();

    let mut out = Vec::new();
    for path in files {
        let Ok(src) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = classify(&rel);
        let view = FileView::new(&ctx, &src);
        let (allows, _) = collect_allows(&view);
        out.extend(allows.into_iter().map(|a| (rel.clone(), a)));
    }
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    #[test]
    fn justified_allow_suppresses_and_counts() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "fn f() {\n    x.unwrap() // itspq-lint: allow(no-panic-in-lib, \"x seeded above\")\n}\n";
        let out = lint_source(&ctx, src);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed, 1);
        assert_eq!(out.allows_used, 1);
    }

    #[test]
    fn allow_for_the_wrong_rule_does_not_suppress() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "fn f() {\n    x.unwrap() // itspq-lint: allow(lock-scope, \"wrong rule\")\n}\n";
        let out = lint_source(&ctx, src);
        // The unwrap still fires AND the allow is reported unused.
        assert_eq!(out.diagnostics.len(), 2);
        assert!(out.diagnostics.iter().any(|d| d.rule == "no-panic-in-lib"));
        assert!(out.diagnostics.iter().any(|d| d.rule == ALLOW_RULE));
    }

    #[test]
    fn unknown_rule_in_allow_is_an_error() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "// itspq-lint: allow(no-such-rule, \"hm\")\nfn f() {}\n";
        let out = lint_source(&ctx, src);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("unknown rule"));
    }

    #[test]
    fn unused_allow_is_an_error() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "// itspq-lint: allow(no-panic-in-lib, \"stale\")\nfn f() { clean(); }\n";
        let out = lint_source(&ctx, src);
        assert_eq!(out.diagnostics.len(), 1);
        assert!(out.diagnostics[0].message.contains("unused allow"));
    }

    #[test]
    fn diagnostics_are_sorted_by_position() {
        let ctx = classify("crates/core/src/a.rs");
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); panic!(); }\n";
        let out = lint_source(&ctx, src);
        let lines: Vec<u32> = out.diagnostics.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}
