//! Inline suppressions: `// itspq-lint: allow(<rule>, "<justification>")`.
//!
//! A suppression is itself checked code:
//!
//! * it must carry a **non-empty justification string** — an allow without
//!   one is an `allow-discipline` error, not a suppression;
//! * the rule name must exist;
//! * it must actually suppress something — stale allows are errors too, so
//!   the suppression inventory can never silently outlive the hazards it
//!   was written for.
//!
//! A trailing allow (code earlier on the same line) applies to its own line;
//! an allow on a line of its own applies to the next code line.

use crate::diag::{Diagnostic, Severity};
use crate::source::FileView;

/// The rule name used for problems with suppressions themselves.
pub const ALLOW_RULE: &str = "allow-discipline";

/// A parsed, well-formed allow directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// The rule being suppressed.
    pub rule: String,
    /// Why the suppression is sound (shown in `--list-allows`).
    pub justification: String,
    /// The source line whose diagnostics this allow suppresses.
    pub target_line: u32,
    /// The line the directive itself is on.
    pub comment_line: u32,
    /// Column of the directive.
    pub col: u32,
}

/// Scans a file's comments for allow directives. Returns the well-formed
/// allows and an `allow-discipline` diagnostic for each malformed one.
#[must_use]
pub fn collect_allows(view: &FileView<'_>) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut errors = Vec::new();
    for (idx, tok) in view.tokens.iter().enumerate() {
        if !tok.is_comment() {
            continue;
        }
        let text = tok.text(view.src);
        // Doc comments are rendered documentation — they *describe* the
        // directive syntax, they don't issue directives.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|p| text.starts_with(p))
        {
            continue;
        }
        let Some(marker) = text.find("itspq-lint:") else {
            continue;
        };
        let rest = text[marker + "itspq-lint:".len()..].trim_start();
        let err = |message: String| Diagnostic {
            rule: ALLOW_RULE,
            severity: Severity::Error,
            path: view.ctx.path.clone(),
            line: tok.line,
            col: tok.col,
            message,
        };
        match parse_allow(rest) {
            Ok((rule, justification)) => {
                let target_line = if code_earlier_on_line(view, idx) {
                    tok.line
                } else {
                    next_code_line(view, idx).unwrap_or(tok.line)
                };
                allows.push(Allow {
                    rule,
                    justification,
                    target_line,
                    comment_line: tok.line,
                    col: tok.col,
                });
            }
            Err(why) => errors.push(err(format!(
                "malformed `itspq-lint:` directive ({why}); expected \
                 `itspq-lint: allow(<rule>, \"<justification>\")`"
            ))),
        }
    }
    (allows, errors)
}

/// Parses `allow(<rule>, "<justification>")`. The justification must be a
/// non-empty double-quoted string.
fn parse_allow(s: &str) -> Result<(String, String), &'static str> {
    let s = s.trim_start();
    let Some(inner) = s.strip_prefix("allow") else {
        return Err("unknown directive, only `allow` is supported");
    };
    let inner = inner.trim_start();
    let Some(inner) = inner.strip_prefix('(') else {
        return Err("missing `(` after `allow`");
    };
    let Some((rule, rest)) = inner.split_once(',') else {
        return Err("missing justification: an allow must explain itself");
    };
    let rule = rule.trim();
    if rule.is_empty() || !rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
        return Err("rule name must be a kebab-case identifier");
    }
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("justification must be a double-quoted string");
    };
    let Some((justification, tail)) = rest.split_once('"') else {
        return Err("unterminated justification string");
    };
    if justification.trim().is_empty() {
        return Err("empty justification: an allow must explain itself");
    }
    if !tail.trim_start().starts_with(')') {
        return Err("missing closing `)`");
    }
    Ok((rule.to_string(), justification.to_string()))
}

/// Whether a code token precedes token `idx` on the same line.
fn code_earlier_on_line(view: &FileView<'_>, idx: usize) -> bool {
    let line = view.tokens[idx].line;
    view.tokens[..idx]
        .iter()
        .rev()
        .take_while(|t| t.line == line)
        .any(|t| !t.is_comment())
}

/// Line of the first code token after token `idx`.
fn next_code_line(view: &FileView<'_>, idx: usize) -> Option<u32> {
    view.tokens[idx + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn allows_of(src: &str) -> (Vec<Allow>, Vec<Diagnostic>) {
        let ctx = classify("crates/core/src/x.rs");
        let view = FileView::new(&ctx, src);
        collect_allows(&view)
    }

    #[test]
    fn trailing_allow_targets_its_own_line() {
        let (a, e) = allows_of(
            "fn f() {\n    x.unwrap(); // itspq-lint: allow(no-panic-in-lib, \"x is set above\")\n}\n",
        );
        assert!(e.is_empty());
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].rule, "no-panic-in-lib");
        assert_eq!(a[0].target_line, 2);
    }

    #[test]
    fn own_line_allow_targets_next_code_line() {
        let (a, e) = allows_of(
            "fn f() {\n    // itspq-lint: allow(no-panic-in-lib, \"seeded above\")\n    x.unwrap();\n}\n",
        );
        assert!(e.is_empty());
        assert_eq!(a[0].comment_line, 2);
        assert_eq!(a[0].target_line, 3);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let (a, e) = allows_of("// itspq-lint: allow(no-panic-in-lib)\nfn f() {}\n");
        assert!(a.is_empty());
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].rule, ALLOW_RULE);
        assert!(e[0].message.contains("missing justification"));
    }

    #[test]
    fn empty_justification_is_an_error() {
        let (a, e) = allows_of("// itspq-lint: allow(float-total-order, \"  \")\nfn f() {}\n");
        assert!(a.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("empty justification"));
    }

    #[test]
    fn gibberish_directive_is_an_error() {
        let (a, e) = allows_of("// itspq-lint: disable-everything\nfn f() {}\n");
        assert!(a.is_empty());
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn doc_comments_describe_but_do_not_direct() {
        let (a, e) = allows_of(
            "/// Write `// itspq-lint: allow(<rule>, \"<why>\")` next to the site.\nfn f() {}\n//! itspq-lint: allow(no-panic-in-lib)\n",
        );
        assert!(a.is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn directive_inside_string_literal_is_ignored() {
        let (a, e) = allows_of("const S: &str = \"// itspq-lint: allow(x)\";\n");
        assert!(a.is_empty());
        assert!(e.is_empty());
    }

    #[test]
    fn block_comment_directive_works() {
        let (a, e) = allows_of(
            "/* itspq-lint: allow(lock-scope, \"guard dropped first\") */\nlet g = m.read();\n",
        );
        assert!(e.is_empty());
        assert_eq!(a[0].target_line, 2);
    }
}
