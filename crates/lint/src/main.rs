//! The `itspq-lint` CLI.
//!
//! ```text
//! itspq-lint [ROOT] [--deny] [--budget-secs N] [--emit json] [--cache PATH]
//!            [--list-rules] [--list-allows]
//! ```
//!
//! * `ROOT` — workspace root to scan (default: the current directory).
//! * `--deny` — exit non-zero if any diagnostic survives suppression; this
//!   is the CI mode.
//! * `--budget-secs N` — fail (exit 2) if the whole run takes longer than
//!   `N` seconds; CI pins the workspace pass under 5 s so the linter can
//!   never become the slow job.
//! * `--emit json` — print one machine-readable JSON object to stdout
//!   (diagnostics, counters, elapsed time, cache hits/misses); the human
//!   summary moves to stderr. CI archives this as a build artifact.
//! * `--cache PATH` — incremental cache file: analyses of files whose
//!   content hash is unchanged are reused, and the cache is rewritten after
//!   the run. A missing or stale cache just means a cold run.
//! * `--list-rules` — print the rule catalogue (both layers) and exit.
//! * `--list-allows` — print the suppression inventory with a staleness
//!   audit: every justified allow with its location, justification, and
//!   whether it still fires on the current sources. Stale allows are
//!   flagged here even without `--deny`.
//!
//! Exit codes: 0 clean (or advisory mode), 1 diagnostics under `--deny`,
//! 2 usage/I-O error or budget exceeded.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use itspq_lint::diag::json_escape;
use itspq_lint::{
    all_rules, audit_workspace_allows, lint_workspace_cached, workspace_rules, CacheStats, Report,
};

#[derive(PartialEq)]
enum Emit {
    Text,
    Json,
}

struct Args {
    root: PathBuf,
    deny: bool,
    budget_secs: Option<f64>,
    emit: Emit,
    cache: Option<PathBuf>,
    list_rules: bool,
    list_allows: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        budget_secs: None,
        emit: Emit::Text,
        cache: None,
        list_rules: false,
        list_allows: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--list-allows" => args.list_allows = true,
            "--budget-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--budget-secs needs a value".to_string())?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --budget-secs value `{v}`"))?;
                args.budget_secs = Some(secs);
            }
            "--emit" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--emit needs a value".to_string())?;
                args.emit = match v.as_str() {
                    "json" => Emit::Json,
                    "text" => Emit::Text,
                    other => return Err(format!("unknown --emit format `{other}` (json|text)")),
                };
            }
            "--cache" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--cache needs a path".to_string())?;
                args.cache = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: itspq-lint [ROOT] [--deny] [--budget-secs N] [--emit json] \
                     [--cache PATH] [--list-rules] [--list-allows]"
                        .to_string(),
                )
            }
            other if !other.starts_with('-') => args.root = PathBuf::from(other),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn render_json(report: &Report, elapsed: f64, cache: CacheStats) -> String {
    let mut out = String::from("{\n  \"diagnostics\": [");
    for (i, d) in report.diagnostics.iter().enumerate() {
        out.push_str(if i == 0 { "\n    " } else { ",\n    " });
        out.push_str(&d.to_json());
    }
    if !report.diagnostics.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str(&format!(
        "],\n  \"files\": {},\n  \"suppressed\": {},\n  \"allows_used\": {},\n  \
         \"elapsed_secs\": {elapsed:.4},\n  \"cache\": {{\"hits\": {}, \"misses\": {}}}\n}}",
        report.files, report.suppressed, report.allows_used, cache.hits, cache.misses,
    ));
    out
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in all_rules() {
            println!("{:<22} {}", rule.name(), rule.description());
        }
        for rule in workspace_rules() {
            println!("{:<22} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if args.list_allows {
        match audit_workspace_allows(&args.root) {
            Ok(audits) => {
                if args.emit == Emit::Json {
                    let rows: Vec<String> = audits
                        .iter()
                        .map(|a| {
                            format!(
                                "{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\
                                 \"justification\":\"{}\",\"used\":{}}}",
                                json_escape(&a.path),
                                a.allow.comment_line,
                                json_escape(&a.allow.rule),
                                json_escape(&a.allow.justification),
                                a.used
                            )
                        })
                        .collect();
                    println!("[{}]", rows.join(","));
                } else {
                    let mut stale = 0usize;
                    for a in &audits {
                        let mark = if a.used { "" } else { "  [STALE]" };
                        if !a.used {
                            stale += 1;
                        }
                        println!(
                            "{}:{}: allow({}) — {}{mark}",
                            a.path, a.allow.comment_line, a.allow.rule, a.allow.justification
                        );
                    }
                    println!("{} allows, {stale} stale", audits.len());
                }
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("itspq-lint: cannot scan {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        }
    }

    let start = Instant::now();
    let (report, cache) = match lint_workspace_cached(&args.root, args.cache.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("itspq-lint: cannot scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();

    if args.emit == Emit::Json {
        println!("{}", render_json(&report, elapsed, cache));
    } else {
        for d in &report.diagnostics {
            println!("{d}");
        }
    }
    let summary = format!(
        "itspq-lint: {} files ({} cached), {} diagnostic{} ({} suppressed by {} justified \
         allow{}), {:.2}s",
        report.files,
        cache.hits,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        report.suppressed,
        report.allows_used,
        if report.allows_used == 1 { "" } else { "s" },
        elapsed,
    );
    if args.emit == Emit::Json {
        eprintln!("{summary}");
    } else {
        println!("{summary}");
    }

    if let Some(budget) = args.budget_secs {
        if elapsed > budget {
            eprintln!("itspq-lint: runtime {elapsed:.2}s exceeded the {budget:.2}s budget");
            return ExitCode::from(2);
        }
    }
    if args.deny && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
