//! The `itspq-lint` CLI.
//!
//! ```text
//! itspq-lint [ROOT] [--deny] [--budget-secs N] [--list-rules] [--list-allows]
//! ```
//!
//! * `ROOT` — workspace root to scan (default: the current directory).
//! * `--deny` — exit non-zero if any diagnostic survives suppression; this
//!   is the CI mode.
//! * `--budget-secs N` — fail (exit 2) if the whole run takes longer than
//!   `N` seconds; CI pins the workspace pass under 5 s so the linter can
//!   never become the slow job.
//! * `--list-rules` — print the rule catalogue and exit.
//! * `--list-allows` — print the workspace's suppression inventory
//!   (every justified allow with its location and justification) and exit.
//!
//! Exit codes: 0 clean (or advisory mode), 1 diagnostics under `--deny`,
//! 2 usage/I-O error or budget exceeded.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use itspq_lint::{all_rules, collect_workspace_allows, lint_workspace};

struct Args {
    root: PathBuf,
    deny: bool,
    budget_secs: Option<f64>,
    list_rules: bool,
    list_allows: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        deny: false,
        budget_secs: None,
        list_rules: false,
        list_allows: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--deny" => args.deny = true,
            "--list-rules" => args.list_rules = true,
            "--list-allows" => args.list_allows = true,
            "--budget-secs" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--budget-secs needs a value".to_string())?;
                let secs: f64 = v
                    .parse()
                    .map_err(|_| format!("invalid --budget-secs value `{v}`"))?;
                args.budget_secs = Some(secs);
            }
            "--help" | "-h" => {
                return Err("usage: itspq-lint [ROOT] [--deny] [--budget-secs N] [--list-rules] [--list-allows]"
                    .to_string())
            }
            other if !other.starts_with('-') => args.root = PathBuf::from(other),
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list_rules {
        for rule in all_rules() {
            println!("{:<22} {}", rule.name(), rule.description());
        }
        return ExitCode::SUCCESS;
    }

    if args.list_allows {
        match collect_workspace_allows(&args.root) {
            Ok(allows) => {
                for (path, a) in &allows {
                    println!(
                        "{path}:{}: allow({}) — {}",
                        a.comment_line, a.rule, a.justification
                    );
                }
                println!("{} allows", allows.len());
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("itspq-lint: cannot scan {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        }
    }

    let start = Instant::now();
    let report = match lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("itspq-lint: cannot scan {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed = start.elapsed().as_secs_f64();

    for d in &report.diagnostics {
        println!("{d}");
    }
    println!(
        "itspq-lint: {} files, {} diagnostic{} ({} suppressed by {} justified allow{}), {:.2}s",
        report.files,
        report.diagnostics.len(),
        if report.diagnostics.len() == 1 {
            ""
        } else {
            "s"
        },
        report.suppressed,
        report.allows_used,
        if report.allows_used == 1 { "" } else { "s" },
        elapsed,
    );

    if let Some(budget) = args.budget_secs {
        if elapsed > budget {
            eprintln!("itspq-lint: runtime {elapsed:.2}s exceeded the {budget:.2}s budget");
            return ExitCode::from(2);
        }
    }
    if args.deny && !report.is_clean() {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}
