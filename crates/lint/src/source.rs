//! File classification and the token view rules run against.
//!
//! The rules are scoped: panic-discipline applies to *library* code of the
//! algorithm crates but not to tests, benches, examples or vendored stubs.
//! [`classify`] derives that scope from the workspace-relative path, and
//! [`FileView`] augments the token stream with `#[cfg(test)]` region
//! information so inline test modules are exempt as well.

use crate::lexer::{lex, Token, TokenKind};

/// What role a file plays in the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Library source (`crates/<x>/src/**`, root `src/**`).
    Lib,
    /// A binary target (`src/main.rs`, `src/bin/**`, `build.rs`).
    Bin,
    /// Integration tests (`tests/**`).
    Test,
    /// Benchmarks (`benches/**`).
    Bench,
    /// Examples (`examples/**`).
    Example,
    /// Vendored third-party stubs (`crates/vendor/**`) — never linted.
    Vendor,
}

/// The crates whose *library* code is held to panic-, float- and
/// lock-discipline. `bench` is deliberately absent (it owns the wall clock
/// and the documented `unsafe` allocator); vendored stubs are out of scope.
pub const LIB_DISCIPLINE_CRATES: &[&str] = &[
    "core",
    "indoor-geom",
    "indoor-space",
    "indoor-time",
    "synthetic",
    "lint",
    "itspq-repro",
];

/// The files whose code sits on the byte-identical answer path: batch
/// planning and scatter, shared execution, certified replay and the
/// one-to-many lattice. Determinism rules (`nondet-iteration`,
/// `float-determinism`) fire only here — everywhere else, iteration order
/// and float reductions cannot reach an answer or a `BatchStats` field.
///
/// To extend the set, add the workspace-relative path here and justify the
/// addition in `ARCHITECTURE.md` (§ *Static analysis & invariants*).
pub const PARITY_CRITICAL_FILES: &[&str] = &[
    "crates/core/src/framework.rs",
    "crates/core/src/replay.rs",
    "crates/core/src/server.rs",
    "crates/core/src/one_to_many.rs",
    "crates/core/src/engine_syn.rs",
    "crates/core/src/engine_asyn.rs",
];

/// Where a file sits: path, owning crate and role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileCtx {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// The owning crate's directory name (`core`, `indoor-geom`, …);
    /// `itspq-repro` for the root umbrella crate.
    pub crate_name: String,
    /// The file's role.
    pub kind: FileKind,
}

impl FileCtx {
    /// Whether library-discipline rules (panic/float/lock) apply here.
    #[must_use]
    pub fn lib_discipline(&self) -> bool {
        self.kind == FileKind::Lib && LIB_DISCIPLINE_CRATES.contains(&self.crate_name.as_str())
    }

    /// Whether determinism rules (`nondet-iteration`, `float-determinism`)
    /// apply here — exact-path membership in [`PARITY_CRITICAL_FILES`].
    #[must_use]
    pub fn parity_critical(&self) -> bool {
        PARITY_CRITICAL_FILES.contains(&self.path.as_str())
    }
}

/// Classifies a workspace-relative path (forward slashes).
#[must_use]
pub fn classify(rel: &str) -> FileCtx {
    let parts: Vec<&str> = rel.split('/').collect();
    let crate_name = if parts.first() == Some(&"crates") && parts.len() > 1 {
        parts[1].to_string()
    } else {
        "itspq-repro".to_string()
    };
    let kind = if rel.starts_with("crates/vendor/") {
        FileKind::Vendor
    } else if parts.contains(&"tests") {
        FileKind::Test
    } else if parts.contains(&"benches") {
        FileKind::Bench
    } else if parts.contains(&"examples") {
        FileKind::Example
    } else if parts.last() == Some(&"build.rs")
        || parts.last() == Some(&"main.rs")
        || parts.contains(&"bin")
    {
        FileKind::Bin
    } else {
        FileKind::Lib
    };
    FileCtx {
        path: rel.to_string(),
        crate_name,
        kind,
    }
}

/// A lexed file plus everything rules need: the comment-free token indices
/// and the byte ranges covered by `#[cfg(test)]`-gated items.
pub struct FileView<'a> {
    /// Classification of the file.
    pub ctx: &'a FileCtx,
    /// The raw source.
    pub src: &'a str,
    /// All tokens, comments included (the allow scanner needs them).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Byte ranges of `#[cfg(test)]` items (inline test modules etc.).
    pub test_regions: Vec<(usize, usize)>,
}

impl<'a> FileView<'a> {
    /// Lexes `src` and computes the code index and test regions.
    #[must_use]
    pub fn new(ctx: &'a FileCtx, src: &'a str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        let mut view = FileView {
            ctx,
            src,
            tokens,
            code,
            test_regions: Vec::new(),
        };
        view.test_regions = view.find_test_regions();
        view
    }

    /// The `i`-th code token (comments skipped), if any.
    #[must_use]
    pub fn ct(&self, i: usize) -> Option<&Token> {
        self.code.get(i).and_then(|&j| self.tokens.get(j))
    }

    /// Text of the `i`-th code token ("" past the end).
    #[must_use]
    pub fn ctext(&self, i: usize) -> &str {
        self.ct(i).map_or("", |t| t.text(self.src))
    }

    /// Kind of the `i`-th code token.
    #[must_use]
    pub fn ckind(&self, i: usize) -> Option<TokenKind> {
        self.ct(i).map(|t| t.kind)
    }

    /// Number of code tokens.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// Whether the `i`-th code token sits inside a `#[cfg(test)]` region.
    #[must_use]
    pub fn in_test_region(&self, i: usize) -> bool {
        self.ct(i).is_some_and(|t| {
            self.test_regions
                .iter()
                .any(|&(s, e)| t.start >= s && t.start < e)
        })
    }

    /// Advances past a balanced bracket group: `open` is the code index of a
    /// `(`, `[` or `{`; returns the code index just past its matching closer
    /// (or the end of the stream for unbalanced input).
    #[must_use]
    pub fn skip_balanced(&self, open: usize) -> usize {
        let mut depth = 0i64;
        let mut i = open;
        while i < self.code_len() {
            match self.ctext(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        return i + 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        i
    }

    /// Finds `#[cfg(test)]`-gated items: returns byte ranges from the `#` of
    /// the attribute to the end of the gated item (matching `}` or `;`).
    fn find_test_regions(&self) -> Vec<(usize, usize)> {
        let mut regions = Vec::new();
        let mut i = 0;
        while i < self.code_len() {
            if self.ctext(i) == "#" && self.ctext(i + 1) == "[" {
                let after_attr = self.skip_balanced(i + 1);
                if self.attr_is_test_gate(i + 2, after_attr.saturating_sub(1)) {
                    let start = self.ct(i).map_or(0, |t| t.start);
                    let end = self.item_end(after_attr);
                    regions.push((start, end));
                    i = after_attr;
                    continue;
                }
                i = after_attr;
                continue;
            }
            i += 1;
        }
        regions
    }

    /// Whether the attribute tokens in `[from, to)` read as a test gate:
    /// first identifier exactly `cfg`, containing `test` and no `not`.
    fn attr_is_test_gate(&self, from: usize, to: usize) -> bool {
        if self.ctext(from) != "cfg" {
            return false;
        }
        let mut saw_test = false;
        for i in from..to {
            match self.ctext(i) {
                "not" => return false,
                "test" => saw_test = true,
                _ => {}
            }
        }
        saw_test
    }

    /// End (byte offset) of the item starting at code index `i`: skips any
    /// further attributes, then runs to the first `;` at relative depth 0 or
    /// past the matching `}` of the first `{` at relative depth 0.
    fn item_end(&self, mut i: usize) -> usize {
        while self.ctext(i) == "#" && self.ctext(i + 1) == "[" {
            i = self.skip_balanced(i + 1);
        }
        let mut depth = 0i64;
        while i < self.code_len() {
            match self.ctext(i) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" => {
                    if depth == 0 {
                        let past = self.skip_balanced(i);
                        return self
                            .ct(past.saturating_sub(1))
                            .map_or(self.src.len(), |t| t.end);
                    }
                    depth += 1;
                }
                "}" => depth -= 1,
                ";" if depth == 0 => {
                    return self.ct(i).map_or(self.src.len(), |t| t.end);
                }
                _ => {}
            }
            i += 1;
        }
        self.src.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        let cases = [
            ("crates/core/src/heap.rs", "core", FileKind::Lib, true),
            ("crates/lint/src/main.rs", "lint", FileKind::Bin, false),
            ("crates/lint/src/lexer.rs", "lint", FileKind::Lib, true),
            (
                "crates/indoor-geom/tests/proptest_geom.rs",
                "indoor-geom",
                FileKind::Test,
                false,
            ),
            ("crates/bench/src/runner.rs", "bench", FileKind::Lib, false),
            (
                "crates/bench/benches/search.rs",
                "bench",
                FileKind::Bench,
                false,
            ),
            (
                "crates/vendor/serde/src/lib.rs",
                "vendor",
                FileKind::Vendor,
                false,
            ),
            ("src/lib.rs", "itspq-repro", FileKind::Lib, true),
            (
                "tests/paper_example.rs",
                "itspq-repro",
                FileKind::Test,
                false,
            ),
            (
                "examples/quickstart.rs",
                "itspq-repro",
                FileKind::Example,
                false,
            ),
        ];
        for (path, krate, kind, disciplined) in cases {
            let ctx = classify(path);
            assert_eq!(ctx.crate_name, krate, "{path}");
            assert_eq!(ctx.kind, kind, "{path}");
            assert_eq!(ctx.lib_discipline(), disciplined, "{path}");
        }
    }

    #[test]
    fn cfg_test_region_covers_inline_module() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let ctx = classify("crates/core/src/x.rs");
        let view = FileView::new(&ctx, src);
        assert_eq!(view.test_regions.len(), 1);
        let unwrap_idx = (0..view.code_len())
            .find(|&i| view.ctext(i) == "unwrap")
            .expect("token present");
        assert!(view.in_test_region(unwrap_idx));
        let after_idx = (0..view.code_len())
            .find(|&i| view.ctext(i) == "after")
            .expect("token present");
        assert!(!view.in_test_region(after_idx));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod real { fn f() { x.unwrap(); } }\n";
        let ctx = classify("crates/core/src/x.rs");
        let view = FileView::new(&ctx, src);
        assert!(view.test_regions.is_empty());
    }

    #[test]
    fn cfg_attr_is_not_a_test_region() {
        let src = "#[cfg_attr(test, allow(dead_code))]\nfn f() {}\n";
        let ctx = classify("crates/core/src/x.rs");
        let view = FileView::new(&ctx, src);
        assert!(view.test_regions.is_empty());
    }

    #[test]
    fn cfg_all_test_counts() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { }\n";
        let ctx = classify("crates/core/src/x.rs");
        let view = FileView::new(&ctx, src);
        assert_eq!(view.test_regions.len(), 1);
    }
}
