//! The workspace symbol table, approximate call graph and lock-acquisition
//! graph.
//!
//! [`extract_facts`] distils each library/binary file into [`FnFact`]s — per
//! function: the calls it makes, the locks it takes (and which were already
//! held at each site), and its unallowed panic sites. [`Workspace`]
//! aggregates the facts of every file, resolves calls against the symbol
//! table and answers the two interprocedural questions the graph rules ask:
//! *which functions can transitively panic* and *which lock can be waited on
//! while which other is held*.
//!
//! ## Resolution model (approximate, conservative by construction)
//!
//! Calls resolve **within the defining crate** only, by name:
//!
//! * `foo(..)` → every free `fn foo` in the crate (snake_case only —
//!   uppercase initials are tuple-struct/variant constructors, not calls);
//! * `Type::foo(..)` → `fn foo` in any `impl Type`/`trait Type` block;
//! * `path::foo(..)` with a lowercase qualifier → free `fn foo` (module
//!   qualifier, approximated away);
//! * `self.foo(..)` → `fn foo` in any impl of the enclosing type;
//! * `expr.foo(..)` on anything else does **not** resolve — the receiver's
//!   type is unknown to a parser. Lock methods are the exception: they are
//!   tracked by receiver *field chain*, which is exactly the identity that
//!   matters for lock ordering.
//!
//! Ambiguity resolves to *all* candidates, so reachability over-approximates
//! (a finding can be silenced with a justified allow, a missed deadlock
//! cannot be un-shipped). Test files, examples, benches, vendored stubs and
//! `#[cfg(test)]` items contribute no facts at all.
//!
//! ## Lock classes
//!
//! A lock acquisition (`.lock()`, `.read()`, `.write()`, `try_` variants,
//! `OnceLock::get_or_init`) is keyed by `crate::receiver-chain` — e.g.
//! `core::scratch.plan` for `self.scratch.plan.lock()`. Guard lifetimes
//! follow the workspace idiom: a `let`-bound guard lives to the end of its
//! block, a temporary to the end of its statement, a `get_or_init` hold to
//! the end of its argument list; `drop(guard)` releases a `let` guard early.

use std::collections::BTreeMap;

use crate::allow::Allow;
use crate::lexer::TokenKind;
use crate::parser::ItemTree;
use crate::source::{FileKind, FileView};

/// Methods whose call acquires a lock guard on their receiver.
pub const GUARD_METHODS: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Methods that hold a `OnceLock`/`Lazy`-style slot for the duration of
/// their closure argument.
pub const SLOT_METHODS: &[&str] = &["get_or_init", "get_or_try_init"];

/// The diverging macros counted as panic sites.
pub const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// The panicking methods counted as panic sites.
pub const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CalleeKind {
    /// `foo(..)` or `module::foo(..)`.
    Free,
    /// `Type::foo(..)`.
    Method,
    /// `self.foo(..)` — resolved against the enclosing impl type.
    SelfMethod,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallFact {
    /// How the callee is named.
    pub kind: CalleeKind,
    /// The type qualifier for [`CalleeKind::Method`] (`""` otherwise).
    pub ty: String,
    /// The callee's simple name.
    pub name: String,
    /// 1-based line of the call.
    pub line: u32,
    /// 1-based column of the call.
    pub col: u32,
    /// Lock classes held when the call is made.
    pub held: Vec<String>,
    /// Whether the line carries an `allow(panic-reachability, ..)` — such a
    /// call is reported (so the allow is exercised) but does not propagate
    /// panickiness to its caller.
    pub allowed_panic: bool,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockFact {
    /// The crate-qualified lock class (`core::cache`).
    pub class: String,
    /// 1-based line of the acquisition.
    pub line: u32,
    /// 1-based column of the acquisition.
    pub col: u32,
    /// Lock classes already held when this one is acquired.
    pub held: Vec<String>,
}

/// One unallowed panic site inside a function body.
#[derive(Debug, Clone)]
pub struct PanicFact {
    /// What panics (`unwrap`, `expect`, `panic!`, …).
    pub what: String,
    /// 1-based line of the site.
    pub line: u32,
    /// 1-based column of the site.
    pub col: u32,
}

/// Everything the graph rules need to know about one function.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// The defining crate.
    pub crate_name: String,
    /// File-local qualified name (`module::Type::method`).
    pub qual: String,
    /// Simple name.
    pub simple: String,
    /// Enclosing impl/trait type, if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Whether the function is `#[cfg(test)]`-gated.
    pub is_test: bool,
    /// Whether `no-panic-in-lib` applies to this function (library code of a
    /// disciplined crate, outside test regions) — such functions are held to
    /// panic-reachability and are never panic *sources* themselves (their
    /// direct sites are already reported or allowed).
    pub discipline: bool,
    /// Call sites, in source order.
    pub calls: Vec<CallFact>,
    /// Lock acquisitions, in source order.
    pub locks: Vec<LockFact>,
    /// Unallowed panic sites, in source order.
    pub panics: Vec<PanicFact>,
}

/// Extracts [`FnFact`]s from one parsed file. Only library and binary files
/// outside `crates/vendor` contribute; `#[cfg(test)]` functions are carried
/// (marked) but never act as panic sources or reachability roots.
#[must_use]
pub fn extract_facts(view: &FileView<'_>, tree: &ItemTree, allows: &[Allow]) -> Vec<FnFact> {
    if !matches!(view.ctx.kind, FileKind::Lib | FileKind::Bin) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for item in tree.fns() {
        let Some((body_open, body_end)) = item.body else {
            continue;
        };
        let mut fact = FnFact {
            path: view.ctx.path.clone(),
            crate_name: view.ctx.crate_name.clone(),
            qual: item.qual_name(),
            simple: item.name.clone(),
            owner: item.owner.clone(),
            line: item.line,
            col: item.col,
            is_test: item.cfg_test,
            discipline: view.ctx.lib_discipline() && !item.cfg_test,
            calls: Vec::new(),
            locks: Vec::new(),
            panics: Vec::new(),
        };
        scan_body(view, body_open, body_end, allows, &mut fact);
        out.push(fact);
    }
    out
}

/// A live lock guard during the body scan.
struct Guard {
    class: String,
    /// `let`-bound binding name, for `drop(name)` release.
    binding: Option<String>,
    /// Lifetime: block depth for `let` guards, statement depth for
    /// temporaries, code-index end for slot holds.
    dies: GuardLife,
}

enum GuardLife {
    /// Dies when the bracket depth drops below this.
    Block(i64),
    /// Dies at the next `;` at or below this depth.
    Stmt(i64),
    /// Dies at this code index (end of a `get_or_init` argument list).
    At(usize),
}

/// Walks one function body, maintaining the set of live guards and
/// recording call, lock and panic facts.
#[allow(clippy::too_many_lines)]
fn scan_body(
    view: &FileView<'_>,
    body_open: usize,
    body_end: usize,
    allows: &[Allow],
    fact: &mut FnFact,
) {
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i64;
    // Whether the current statement opened with `let`, and its binding.
    let mut stmt_is_let = false;
    let mut let_binding: Option<String> = None;
    let mut stmt_fresh = true; // next token starts a statement

    let mut i = body_open + 1;
    while i + 1 < body_end.max(1) && i < view.code_len() {
        let text = view.ctext(i);
        guards.retain(|g| !matches!(g.dies, GuardLife::At(end) if i >= end));

        match text {
            "{" | "(" | "[" => {
                depth += 1;
                stmt_fresh = text == "{";
            }
            "}" | ")" | "]" => {
                depth -= 1;
                guards.retain(|g| match g.dies {
                    GuardLife::Block(d) | GuardLife::Stmt(d) => d <= depth,
                    GuardLife::At(_) => true,
                });
                stmt_fresh = text == "}";
            }
            ";" => {
                guards.retain(|g| !matches!(g.dies, GuardLife::Stmt(d) if d >= depth));
                stmt_is_let = false;
                let_binding = None;
                stmt_fresh = true;
            }
            "let" if stmt_fresh => {
                stmt_is_let = true;
                let_binding = first_ident_after(view, i + 1, body_end);
                stmt_fresh = false;
            }
            "drop" if view.ctext(i + 1) == "(" => {
                // `drop(guard)` releases a let-bound guard early.
                if view.ckind(i + 2) == Some(TokenKind::Ident) && view.ctext(i + 3) == ")" {
                    let name = view.ctext(i + 2);
                    guards.retain(|g| g.binding.as_deref() != Some(name));
                }
                stmt_fresh = false;
            }
            _ => {
                scan_token(
                    view,
                    i,
                    body_end,
                    depth,
                    allows,
                    fact,
                    &mut guards,
                    stmt_is_let,
                    &let_binding,
                );
                stmt_fresh = false;
            }
        }
        i += 1;
    }
}

/// Handles one non-structural token: lock acquisitions, calls, panic sites.
#[allow(clippy::too_many_arguments)]
fn scan_token(
    view: &FileView<'_>,
    i: usize,
    body_end: usize,
    depth: i64,
    allows: &[Allow],
    fact: &mut FnFact,
    guards: &mut Vec<Guard>,
    stmt_is_let: bool,
    let_binding: &Option<String>,
) {
    let text = view.ctext(i);
    if view.ckind(i) != Some(TokenKind::Ident)
        || view.ctext(i + 1) != "(" && view.ctext(i + 1) != "!"
    {
        return;
    }
    let Some(tok) = view.ct(i) else { return };
    let held: Vec<String> = {
        let mut h: Vec<String> = guards.iter().map(|g| g.class.clone()).collect();
        h.dedup();
        h
    };

    // Panic macros: `panic!(…)`, `unreachable!(…)`, …
    if view.ctext(i + 1) == "!" {
        if PANIC_MACROS.contains(&text) && !panic_allowed(allows, tok.line) {
            fact.panics.push(PanicFact {
                what: format!("{text}!"),
                line: tok.line,
                col: tok.col,
            });
        }
        return;
    }

    let after_dot = view.ctext(i.wrapping_sub(1)) == "." && i > 0;

    // Lock and slot acquisitions.
    if after_dot && (GUARD_METHODS.contains(&text) || SLOT_METHODS.contains(&text)) {
        let class = format!(
            "{}::{}",
            fact.crate_name,
            receiver_chain(view, i.saturating_sub(1))
        );
        fact.locks.push(LockFact {
            class: class.clone(),
            line: tok.line,
            col: tok.col,
            held: held.clone(),
        });
        let after_args = view.skip_balanced(i + 1).min(body_end);
        let dies = if SLOT_METHODS.contains(&text) {
            GuardLife::At(after_args)
        } else if stmt_is_let && view.ctext(after_args) == ";" {
            GuardLife::Block(depth)
        } else {
            GuardLife::Stmt(depth)
        };
        guards.push(Guard {
            class,
            binding: if matches!(dies, GuardLife::Block(_)) {
                let_binding.clone()
            } else {
                None
            },
            dies,
        });
        return;
    }

    // Panic methods: `.unwrap()`, `.expect(…)`.
    if after_dot && PANIC_METHODS.contains(&text) {
        if !panic_allowed(allows, tok.line) {
            fact.panics.push(PanicFact {
                what: text.to_string(),
                line: tok.line,
                col: tok.col,
            });
        }
        return;
    }

    // Call sites.
    let allowed_panic = allows
        .iter()
        .any(|a| a.rule == "panic-reachability" && a.target_line == tok.line);
    let call = if after_dot {
        // Method call: resolve only `self.foo(..)`.
        if view.ctext(i.wrapping_sub(2)) == "self" && i >= 2 {
            Some(CallFact {
                kind: CalleeKind::SelfMethod,
                ty: String::new(),
                name: text.to_string(),
                line: tok.line,
                col: tok.col,
                held,
                allowed_panic,
            })
        } else {
            None
        }
    } else if view.ctext(i.wrapping_sub(1)) == "::" && i > 0 {
        // Path call: `Type::foo(..)` or `module::foo(..)`.
        let quald = view.ctext(i.wrapping_sub(2));
        if i >= 2 && view.ckind(i - 2) == Some(TokenKind::Ident) && !starts_upper(text) {
            if starts_upper(quald) {
                Some(CallFact {
                    kind: CalleeKind::Method,
                    ty: quald.to_string(),
                    name: text.to_string(),
                    line: tok.line,
                    col: tok.col,
                    held,
                    allowed_panic,
                })
            } else {
                Some(CallFact {
                    kind: CalleeKind::Free,
                    ty: String::new(),
                    name: text.to_string(),
                    line: tok.line,
                    col: tok.col,
                    held,
                    allowed_panic,
                })
            }
        } else {
            None
        }
    } else if !starts_upper(text) && !is_expr_keyword(text) {
        Some(CallFact {
            kind: CalleeKind::Free,
            ty: String::new(),
            name: text.to_string(),
            line: tok.line,
            col: tok.col,
            held,
            allowed_panic,
        })
    } else {
        None
    };
    if let Some(c) = call {
        fact.calls.push(c);
    }
}

fn panic_allowed(allows: &[Allow], line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.rule == "no-panic-in-lib" && a.target_line == line)
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(char::is_uppercase)
}

fn is_expr_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "in"
            | "as"
            | "move"
            | "else"
            | "let"
            | "fn"
            | "pub"
            | "mut"
            | "ref"
            | "break"
            | "continue"
            | "await"
            | "dyn"
            | "where"
            | "impl"
            | "use"
            | "self"
            | "super"
            | "crate"
            | "assert"
            | "assert_eq"
            | "assert_ne"
            | "debug_assert"
            | "debug_assert_eq"
            | "debug_assert_ne"
            | "drop"
    )
}

/// The first plain identifier after `from` (skipping `mut`, `(`, `&`) — the
/// best-effort binding name of a `let` pattern.
fn first_ident_after(view: &FileView<'_>, from: usize, to: usize) -> Option<String> {
    let mut i = from;
    while i < to {
        match view.ctext(i) {
            "mut" | "(" | "&" | "ref" => i += 1,
            t if view.ckind(i) == Some(TokenKind::Ident) => return Some(t.to_string()),
            _ => return None,
        }
    }
    None
}

/// Walks the dotted receiver chain backwards from `dot_idx` (the `.` before
/// a method name) and renders it, `self` elided: `self.scratch.plan.lock()`
/// → `scratch.plan`; `foo().lock()` → `foo`.
fn receiver_chain(view: &FileView<'_>, dot_idx: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = dot_idx; // index of a '.' token
    while let Some(prev) = j.checked_sub(1) {
        if view.ckind(prev) == Some(TokenKind::Ident) {
            let t = view.ctext(prev);
            if t == "self" {
                break;
            }
            parts.push(t.to_string());
            if prev >= 1 && view.ctext(prev - 1) == "." {
                j = prev - 1;
                continue;
            }
            break;
        }
        if view.ctext(prev) == ")" {
            let Some(open) = backward_match(view, prev) else {
                break;
            };
            if open >= 1 && view.ckind(open - 1) == Some(TokenKind::Ident) {
                parts.push(view.ctext(open - 1).to_string());
                if open >= 2 && view.ctext(open - 2) == "." {
                    j = open - 2;
                    continue;
                }
            }
            break;
        }
        break;
    }
    if parts.is_empty() {
        "?".to_string()
    } else {
        parts.reverse();
        parts.join(".")
    }
}

/// Code index of the `(` matching the `)` at `close`, scanning backwards.
fn backward_match(view: &FileView<'_>, close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = close;
    loop {
        match view.ctext(j) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j = j.checked_sub(1)?;
    }
}

/// One edge of the workspace lock graph: `to` can be waited on while `from`
/// is held, witnessed at `path:line:col` inside `via_fn`.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// The held lock class.
    pub from: String,
    /// The acquired (or transitively acquirable) lock class.
    pub to: String,
    /// Witness file.
    pub path: String,
    /// Witness line.
    pub line: u32,
    /// Witness column.
    pub col: u32,
    /// The function containing the witness site.
    pub via_fn: String,
    /// A note on how the edge arises (direct nesting or via a call chain).
    pub how: String,
}

/// The aggregated workspace: every function fact plus the symbol table the
/// resolver uses.
#[derive(Debug, Default)]
pub struct Workspace {
    /// All function facts, in deterministic (file, source) order.
    pub fns: Vec<FnFact>,
    free: BTreeMap<(String, String), Vec<usize>>,
    methods: BTreeMap<(String, String, String), Vec<usize>>,
}

impl Workspace {
    /// Builds the symbol table over `fns` (which must already be in
    /// deterministic order — the engine sorts files by path).
    #[must_use]
    pub fn build(fns: Vec<FnFact>) -> Self {
        let mut ws = Workspace {
            fns,
            free: BTreeMap::new(),
            methods: BTreeMap::new(),
        };
        for (i, f) in ws.fns.iter().enumerate() {
            match &f.owner {
                Some(ty) => ws
                    .methods
                    .entry((f.crate_name.clone(), ty.clone(), f.simple.clone()))
                    .or_default()
                    .push(i),
                None => ws
                    .free
                    .entry((f.crate_name.clone(), f.simple.clone()))
                    .or_default()
                    .push(i),
            }
        }
        ws
    }

    /// Resolves a call made from `caller` to the indices of every candidate
    /// callee (same crate, by name; empty when unresolvable — std, vendor,
    /// field-typed method receivers).
    #[must_use]
    pub fn resolve(&self, caller: usize, call: &CallFact) -> &[usize] {
        let krate = &self.fns[caller].crate_name;
        static EMPTY: [usize; 0] = [];
        let found = match call.kind {
            CalleeKind::Free => self.free.get(&(krate.clone(), call.name.clone())),
            CalleeKind::Method => {
                self.methods
                    .get(&(krate.clone(), call.ty.clone(), call.name.clone()))
            }
            CalleeKind::SelfMethod => match &self.fns[caller].owner {
                Some(ty) => self
                    .methods
                    .get(&(krate.clone(), ty.clone(), call.name.clone())),
                None => None,
            },
        };
        found.map_or(&EMPTY[..], Vec::as_slice)
    }

    /// For every function: can it (transitively, through resolved calls
    /// whose edges are not `panic-reachability`-allowed) reach an unallowed
    /// panic site *outside* `no-panic-in-lib` scope? Functions inside that
    /// scope are never sources — their direct sites are already reported or
    /// locally proven — so this is exactly the interprocedural lift.
    #[must_use]
    pub fn can_panic(&self) -> Vec<bool> {
        let mut can: Vec<bool> = self
            .fns
            .iter()
            .map(|f| !f.discipline && !f.is_test && !f.panics.is_empty())
            .collect();
        // Fixpoint: tiny graphs, a few rounds in practice.
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if can[i] {
                    continue;
                }
                let reaches = self.fns[i]
                    .calls
                    .iter()
                    .filter(|c| !c.allowed_panic)
                    .any(|c| self.resolve(i, c).iter().any(|&j| can[j]));
                if reaches {
                    can[i] = true;
                    changed = true;
                }
            }
            if !changed {
                return can;
            }
        }
    }

    /// A witness chain from `start` to a panic site: function indices ending
    /// at one with a direct panic, following non-allowed resolved calls.
    /// `None` when `start` cannot panic (or only via allowed edges).
    #[must_use]
    pub fn panic_witness(&self, start: usize, can: &[bool]) -> Option<Vec<usize>> {
        let mut prev: Vec<Option<usize>> = vec![None; self.fns.len()];
        let mut seen = vec![false; self.fns.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start] = true;
        queue.push_back(start);
        while let Some(i) = queue.pop_front() {
            if !self.fns[i].discipline && !self.fns[i].is_test && !self.fns[i].panics.is_empty() {
                let mut path = vec![i];
                let mut cur = i;
                while let Some(p) = prev[cur] {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for c in &self.fns[i].calls {
                if c.allowed_panic {
                    continue;
                }
                for &j in self.resolve(i, c) {
                    if !seen[j] && can[j] {
                        seen[j] = true;
                        prev[j] = Some(i);
                        queue.push_back(j);
                    }
                }
            }
        }
        None
    }

    /// The lock classes each function may acquire, transitively through
    /// resolved calls.
    #[must_use]
    pub fn transitive_locks(&self) -> Vec<Vec<String>> {
        let mut acq: Vec<Vec<String>> = self
            .fns
            .iter()
            .map(|f| {
                let mut v: Vec<String> = f.locks.iter().map(|l| l.class.clone()).collect();
                v.sort();
                v.dedup();
                v
            })
            .collect();
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                let mut add: Vec<String> = Vec::new();
                for c in &self.fns[i].calls {
                    for &j in self.resolve(i, c) {
                        if j == i {
                            continue;
                        }
                        for cls in &acq[j] {
                            if !acq[i].contains(cls) && !add.contains(cls) {
                                add.push(cls.clone());
                            }
                        }
                    }
                }
                if !add.is_empty() {
                    acq[i].extend(add);
                    acq[i].sort();
                    acq[i].dedup();
                    changed = true;
                }
            }
            if !changed {
                return acq;
            }
        }
    }

    /// Every edge of the workspace lock graph, deduplicated by
    /// `(from, to)` with the first witness (in file/source order) kept:
    ///
    /// * direct: a lock acquired while another is held;
    /// * interprocedural: a call made while a lock is held, to a function
    ///   that (transitively) acquires another lock.
    #[must_use]
    pub fn lock_edges(&self) -> Vec<LockEdge> {
        let acq = self.transitive_locks();
        let mut seen: BTreeMap<(String, String), usize> = BTreeMap::new();
        let mut edges: Vec<LockEdge> = Vec::new();
        let push = |edges: &mut Vec<LockEdge>,
                    seen: &mut BTreeMap<(String, String), usize>,
                    e: LockEdge| {
            let key = (e.from.clone(), e.to.clone());
            if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(key) {
                slot.insert(edges.len());
                edges.push(e);
            }
        };
        for (i, f) in self.fns.iter().enumerate() {
            for l in &f.locks {
                for h in &l.held {
                    push(
                        &mut edges,
                        &mut seen,
                        LockEdge {
                            from: h.clone(),
                            to: l.class.clone(),
                            path: f.path.clone(),
                            line: l.line,
                            col: l.col,
                            via_fn: f.qual.clone(),
                            how: format!("`{}` acquired while `{h}` is held", l.class),
                        },
                    );
                }
            }
            for c in &f.calls {
                if c.held.is_empty() {
                    continue;
                }
                for &j in self.resolve(i, c) {
                    for cls in &acq[j] {
                        for h in &c.held {
                            if h == cls {
                                continue; // same class via call: re-entrancy,
                                          // reported as a self-edge only when
                                          // direct (too noisy otherwise)
                            }
                            push(
                                &mut edges,
                                &mut seen,
                                LockEdge {
                                    from: h.clone(),
                                    to: cls.clone(),
                                    path: f.path.clone(),
                                    line: c.line,
                                    col: c.col,
                                    via_fn: f.qual.clone(),
                                    how: format!(
                                        "call to `{}` (which may acquire `{cls}`) while `{h}` is held",
                                        c.name
                                    ),
                                },
                            );
                        }
                    }
                }
            }
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::source::classify;

    fn facts_of(path: &str, src: &str) -> Vec<FnFact> {
        let ctx = classify(path);
        let view = FileView::new(&ctx, src);
        let tree = parse(&view);
        let (allows, _) = crate::allow::collect_allows(&view);
        extract_facts(&view, &tree, &allows)
    }

    #[test]
    fn records_calls_locks_and_panics() {
        let src = "\
struct S;\n\
impl S {\n\
    fn f(&self) {\n\
        let g = self.cache.write();\n\
        self.probe();\n\
        helper(g.len());\n\
    }\n\
    fn probe(&self) {}\n\
}\n\
fn helper(n: usize) { n.to_string().parse().unwrap(); }\n";
        let facts = facts_of("crates/core/src/a.rs", src);
        assert_eq!(facts.len(), 3);
        let f = &facts[0];
        assert_eq!(f.qual, "S::f");
        assert_eq!(f.locks.len(), 1);
        assert_eq!(f.locks[0].class, "core::cache");
        // Both the self-method and the free call are made while the guard
        // is held.
        let call_names: Vec<(&str, bool)> = f
            .calls
            .iter()
            .map(|c| (c.name.as_str(), !c.held.is_empty()))
            .collect();
        assert!(call_names.contains(&("probe", true)));
        assert!(call_names.contains(&("helper", true)));
        // helper's unwrap is a panic fact.
        assert_eq!(facts[2].panics.len(), 1);
        assert_eq!(facts[2].panics[0].what, "unwrap");
    }

    #[test]
    fn temporary_guards_die_at_statement_end() {
        let src = "\
fn f(&self) {\n\
    self.pool.lock().push(1);\n\
    other();\n\
}\n";
        let facts = facts_of("crates/core/src/a.rs", src);
        let f = &facts[0];
        let other = f.calls.iter().find(|c| c.name == "other").unwrap();
        assert!(other.held.is_empty(), "temporary guard leaked: {other:?}");
    }

    #[test]
    fn let_guards_die_at_block_end_or_drop() {
        let src = "\
fn f(&self) {\n\
    { let g = self.a.lock(); used(); }\n\
    after_block();\n\
    let h = self.b.lock();\n\
    drop(h);\n\
    after_drop();\n\
}\n";
        let facts = facts_of("crates/core/src/a.rs", src);
        let f = &facts[0];
        let held_at = |name: &str| {
            f.calls
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.held.clone())
                .unwrap_or_default()
        };
        assert_eq!(held_at("used"), vec!["core::a".to_string()]);
        assert!(held_at("after_block").is_empty());
        assert!(held_at("after_drop").is_empty());
    }

    #[test]
    fn get_or_init_holds_its_slot_for_the_closure() {
        let src = "\
fn f(&self) {\n\
    let v = slot.get_or_init(|| build_view());\n\
    outside();\n\
}\n";
        let facts = facts_of("crates/core/src/a.rs", src);
        let f = &facts[0];
        let build = f.calls.iter().find(|c| c.name == "build_view").unwrap();
        assert_eq!(build.held, vec!["core::slot".to_string()]);
        let outside = f.calls.iter().find(|c| c.name == "outside").unwrap();
        assert!(outside.held.is_empty());
    }

    #[test]
    fn nested_acquisition_yields_a_lock_edge_and_cycles_are_visible() {
        let a = "\
fn ab(&self) {\n\
    let g = self.alpha.lock();\n\
    let h = self.beta.lock();\n\
    g.merge(h);\n\
}\n";
        let b = "\
fn ba(&self) {\n\
    let g = self.beta.lock();\n\
    let h = self.alpha.lock();\n\
    g.merge(h);\n\
}\n";
        let mut fns = facts_of("crates/core/src/a.rs", a);
        fns.extend(facts_of("crates/core/src/b.rs", b));
        let ws = Workspace::build(fns);
        let edges = ws.lock_edges();
        let pairs: Vec<(&str, &str)> = edges
            .iter()
            .map(|e| (e.from.as_str(), e.to.as_str()))
            .collect();
        assert!(pairs.contains(&("core::alpha", "core::beta")));
        assert!(pairs.contains(&("core::beta", "core::alpha")));
    }

    #[test]
    fn interprocedural_lock_edge_via_call() {
        let src = "\
fn outer(&self) {\n\
    let g = self.alpha.lock();\n\
    inner(g.key());\n\
}\n\
fn inner(k: u32) {\n\
    let h = GLOBAL.beta.lock();\n\
    h.touch(k);\n\
}\n";
        let ws = Workspace::build(facts_of("crates/core/src/a.rs", src));
        let edges = ws.lock_edges();
        assert!(
            edges.iter().any(|e| e.from == "core::alpha"
                && e.to == "core::GLOBAL.beta"
                && e.how.contains("inner")),
            "{edges:?}"
        );
    }

    #[test]
    fn can_panic_propagates_three_deep_but_not_into_discipline_scope() {
        // bench-crate helpers (no panic discipline) panic three deep.
        let helpers = "\
pub fn level1() { level2(); }\n\
fn level2() { level3(); }\n\
fn level3() { boom.unwrap(); }\n\
fn clean() {}\n";
        let fns = facts_of("crates/bench/src/helpers.rs", helpers);
        let ws = Workspace::build(fns);
        let can = ws.can_panic();
        let by_name = |n: &str| {
            ws.fns
                .iter()
                .position(|f| f.simple == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert!(can[by_name("level1")]);
        assert!(can[by_name("level2")]);
        assert!(can[by_name("level3")]);
        assert!(!can[by_name("clean")]);
        let witness = ws.panic_witness(by_name("level1"), &can).unwrap();
        assert_eq!(witness.len(), 3);
    }

    #[test]
    fn discipline_fns_are_not_sources_and_allowed_sites_are_excluded() {
        // In discipline scope an unwrap is a *direct* finding, not a source;
        // an allowed unwrap is proven and excluded everywhere.
        let src = "\
fn direct() { x.unwrap(); }\n\
fn proven() { y.unwrap() } // itspq-lint: allow(no-panic-in-lib, \"y seeded\")\n";
        let ws = Workspace::build(facts_of("crates/core/src/a.rs", src));
        let can = ws.can_panic();
        assert!(can.iter().all(|&c| !c), "{:?}", ws.fns);
        assert!(
            ws.fns[1].panics.is_empty(),
            "allowed site leaked into facts"
        );
    }

    #[test]
    fn test_files_and_cfg_test_fns_contribute_nothing() {
        let src = "fn t() { x.unwrap(); }\n";
        assert!(facts_of("crates/core/tests/t.rs", src).is_empty());
        let gated = "#[cfg(test)]\nmod tests { fn t() { x.unwrap(); } }\n";
        let facts = facts_of("crates/core/src/a.rs", gated);
        assert!(facts.iter().all(|f| f.is_test));
        let ws = Workspace::build(facts);
        assert!(ws.can_panic().iter().all(|&c| !c));
    }

    #[test]
    fn self_method_resolution_uses_the_enclosing_impl_type() {
        let src = "\
struct A;\n\
struct B;\n\
impl A { fn go(&self) { self.helper(); } fn helper(&self) { x.unwrap(); } }\n\
impl B { fn helper(&self) {} }\n";
        let ws = Workspace::build(facts_of("crates/bench/src/a.rs", src));
        let go = ws.fns.iter().position(|f| f.qual == "A::go").unwrap();
        let call = &ws.fns[go].calls[0];
        let resolved = ws.resolve(go, call);
        assert_eq!(resolved.len(), 1);
        assert_eq!(ws.fns[resolved[0]].qual, "A::helper");
    }
}
