//! `panic-reachability`: the interprocedural lift of `no-panic-in-lib`.
//!
//! `no-panic-in-lib` proves each disciplined library function free of
//! *direct* panic sites — but a clean function that calls a helper in a
//! non-disciplined crate (or a binary) whose body `unwrap`s is one bad
//! input away from poisoning a worker pool all the same. This rule walks
//! the approximate same-crate call graph: a disciplined library function
//! may not transitively reach an unallowed panic site.
//!
//! A finding is reported at the **call site** whose callee can panic, with
//! the witness chain down to the concrete site. Silence it with
//! `allow(panic-reachability, "…")` on the call line — the allow cuts that
//! edge out of propagation (so callers of *this* function stop inheriting
//! the panickiness) while keeping the allow exercised and therefore
//! staleness-checked.
//!
//! Panic sites already covered by a justified `allow(no-panic-in-lib)` are
//! proven-unreachable by their own argument and never count as sources.

use crate::diag::{Diagnostic, Severity};
use crate::graph::Workspace;
use crate::rules::WorkspaceRule;

/// See the module docs.
pub struct PanicReachability;

impl WorkspaceRule for PanicReachability {
    fn name(&self) -> &'static str {
        "panic-reachability"
    }

    fn description(&self) -> &'static str {
        "disciplined lib fns may not transitively reach unwrap/panic! via workspace calls"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let can = ws.can_panic();
        for (i, f) in ws.fns.iter().enumerate() {
            if !f.discipline {
                continue;
            }
            for call in &f.calls {
                // Allowed calls are still reported here — the engine
                // suppresses the finding against the allow (marking it
                // used); only *propagation* to callers is cut, in
                // [`Workspace::can_panic`].
                let Some(&bad) = ws.resolve(i, call).iter().find(|&&j| can[j]) else {
                    continue;
                };
                let witness = ws
                    .panic_witness(bad, &can)
                    .map(|chain| describe(ws, &chain))
                    .unwrap_or_else(|| ws.fns[bad].qual.clone());
                out.push(Diagnostic {
                    rule: "panic-reachability",
                    severity: Severity::Error,
                    path: f.path.clone(),
                    line: call.line,
                    col: call.col,
                    message: format!(
                        "`{}` can panic: {witness}; make the callee total (return \
                         Result/Option) or justify with allow(panic-reachability, ..)",
                        call.name
                    ),
                });
            }
        }
    }
}

/// Renders a witness chain `f -> g -> h (unwrap at path:line)`.
fn describe(ws: &Workspace, chain: &[usize]) -> String {
    let names: Vec<&str> = chain.iter().map(|&j| ws.fns[j].qual.as_str()).collect();
    let site = chain
        .last()
        .map(|&j| &ws.fns[j])
        .and_then(|last| {
            last.panics
                .first()
                .map(|p| format!(" ({} at {}:{})", p.what, last.path, p.line))
        })
        .unwrap_or_default();
    format!("{}{site}", names.join(" -> "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::extract_facts;
    use crate::parser::parse;
    use crate::source::{classify, FileView};

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut fns = Vec::new();
        for (path, src) in files {
            let ctx = classify(path);
            let view = FileView::new(&ctx, src);
            let tree = parse(&view);
            let (allows, _) = crate::allow::collect_allows(&view);
            fns.extend(extract_facts(&view, &tree, &allows));
        }
        let mut out = Vec::new();
        PanicReachability.check(&Workspace::build(fns), &mut out);
        out
    }

    #[test]
    fn three_deep_transitive_panic_is_reported_with_a_witness() {
        // `main.rs` is Bin: panic sites there are legal locally but must not
        // be reachable from disciplined lib code in the same crate.
        let lib = "pub fn answer() -> u32 { helper_chain() }\n";
        let binf = "\
fn helper_chain() -> u32 { deeper() }\n\
fn deeper() -> u32 { deepest() }\n\
fn deepest() -> u32 { std::env::var(\"X\").unwrap().parse().unwrap() }\n\
fn main() { answer(); }\n";
        let out = run(&[
            ("crates/lint/src/lib.rs", lib),
            ("crates/lint/src/main.rs", binf),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("helper_chain -> deeper -> deepest"));
        assert!(out[0].message.contains("unwrap"));
        assert_eq!(out[0].path, "crates/lint/src/lib.rs");
    }

    #[test]
    fn clean_call_chains_are_clean() {
        let lib = "pub fn answer() -> u32 { helper() }\n";
        let binf = "fn helper() -> u32 { 42 }\nfn main() { answer(); }\n";
        assert!(run(&[
            ("crates/lint/src/lib.rs", lib),
            ("crates/lint/src/main.rs", binf),
        ])
        .is_empty());
    }

    #[test]
    fn allow_cuts_propagation_but_still_reports_at_the_site() {
        // `mid` allows its panicking call; `top` calls `mid`. The allowed
        // site is still reported (the engine suppresses it against the
        // allow, keeping it exercised) but `top` inherits nothing.
        let lib = "\
pub fn top() -> u32 { mid() }\n\
pub fn mid() -> u32 {\n\
    helper() // itspq-lint: allow(panic-reachability, \"input validated upstream\")\n\
}\n";
        let binf = "fn helper() -> u32 { x.unwrap() }\nfn main() {}\n";
        let out = run(&[
            ("crates/lint/src/lib.rs", lib),
            ("crates/lint/src/main.rs", binf),
        ]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 3, "must point at the allowed call, not `top`");
    }

    #[test]
    fn allowed_panic_sites_are_not_sources() {
        let lib = "pub fn answer() -> u32 { helper() }\n";
        let binf = "\
fn helper() -> u32 {\n\
    x.unwrap() // itspq-lint: allow(no-panic-in-lib, \"x is infallible here\")\n\
}\n\
fn main() {}\n";
        assert!(run(&[
            ("crates/lint/src/lib.rs", lib),
            ("crates/lint/src/main.rs", binf),
        ])
        .is_empty());
    }

    #[test]
    fn calls_from_test_gated_code_are_exempt() {
        let lib = "\
#[cfg(test)]\n\
mod tests { fn t() { helper(); } }\n";
        let binf = "fn helper() -> u32 { x.unwrap() }\nfn main() {}\n";
        assert!(run(&[
            ("crates/lint/src/lib.rs", lib),
            ("crates/lint/src/main.rs", binf),
        ])
        .is_empty());
    }
}
