//! The rule engine: one module per rule, a common trait, and the registry.
//!
//! Rules are **lexical**: they match token patterns, not types. That makes
//! them fast (the whole workspace lints in well under a second) and honest —
//! each rule documents the approximation it makes and every rule can be
//! silenced per-site with a justified
//! `// itspq-lint: allow(<rule>, "<why>")`.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::Token;
use crate::source::FileView;

mod float_total_order;
mod lock_scope;
mod no_panic_in_lib;
mod no_wall_clock_in_core;
mod scoped_threads_only;

pub use float_total_order::FloatTotalOrder;
pub use lock_scope::LockScope;
pub use no_panic_in_lib::NoPanicInLib;
pub use no_wall_clock_in_core::NoWallClockInCore;
pub use scoped_threads_only::ScopedThreadsOnly;

/// A lint rule.
pub trait Rule {
    /// Kebab-case rule name, as used in allow directives.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Scans one file and appends findings.
    fn check(&self, view: &FileView<'_>, out: &mut Vec<Diagnostic>);
}

/// All shipped rules, in reporting order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicInLib),
        Box::new(FloatTotalOrder),
        Box::new(LockScope),
        Box::new(ScopedThreadsOnly),
        Box::new(NoWallClockInCore),
    ]
}

/// Whether `name` is a shipped rule name.
#[must_use]
pub fn is_known_rule(name: &str) -> bool {
    all_rules().iter().any(|r| r.name() == name)
}

/// Shared constructor for rule findings.
pub(crate) fn diag(
    view: &FileView<'_>,
    rule: &'static str,
    tok: &Token,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        path: view.ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}
