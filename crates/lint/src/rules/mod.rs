//! The rule engine: one module per rule, two common traits, and the
//! registry.
//!
//! Rules come in two layers:
//!
//! * **Token rules** ([`Rule`]) are per-file and lexical: they match token
//!   patterns against one [`FileView`] (with the parsed [`ItemTree`] on
//!   hand for scoping). Fast, honest about their approximations, and every
//!   finding can be silenced per-site with a justified
//!   `// itspq-lint: allow(<rule>, "<why>")`.
//! * **Graph rules** ([`WorkspaceRule`]) run once over the aggregated
//!   [`Workspace`] — the symbol table, approximate call graph and
//!   lock-acquisition graph — and report cross-file facts a single file
//!   cannot show: deadlock cycles and transitive panic reachability.

use crate::diag::{Diagnostic, Severity};
use crate::graph::Workspace;
use crate::lexer::Token;
use crate::parser::ItemTree;
use crate::source::FileView;

mod float_determinism;
mod float_total_order;
mod lock_order;
mod lock_scope;
mod no_panic_in_lib;
mod no_wall_clock_in_core;
mod nondet_iteration;
mod panic_reachability;
mod scoped_threads_only;

pub use float_determinism::FloatDeterminism;
pub use float_total_order::FloatTotalOrder;
pub use lock_order::LockOrder;
pub use lock_scope::LockScope;
pub use no_panic_in_lib::NoPanicInLib;
pub use no_wall_clock_in_core::NoWallClockInCore;
pub use nondet_iteration::NondetIteration;
pub use panic_reachability::PanicReachability;
pub use scoped_threads_only::ScopedThreadsOnly;

/// A per-file (token-layer) lint rule.
pub trait Rule {
    /// Kebab-case rule name, as used in allow directives.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Scans one file and appends findings.
    fn check(&self, view: &FileView<'_>, tree: &ItemTree, out: &mut Vec<Diagnostic>);
}

/// A workspace (graph-layer) lint rule.
pub trait WorkspaceRule {
    /// Kebab-case rule name, as used in allow directives.
    fn name(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Scans the aggregated workspace and appends findings.
    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>);
}

/// All shipped per-file rules, in reporting order.
#[must_use]
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanicInLib),
        Box::new(FloatTotalOrder),
        Box::new(LockScope),
        Box::new(ScopedThreadsOnly),
        Box::new(NoWallClockInCore),
        Box::new(NondetIteration),
        Box::new(FloatDeterminism),
    ]
}

/// All shipped workspace rules, in reporting order.
#[must_use]
pub fn workspace_rules() -> Vec<Box<dyn WorkspaceRule>> {
    vec![Box::new(LockOrder), Box::new(PanicReachability)]
}

/// Whether `name` is a shipped rule name (either layer). The
/// `allow-discipline` meta-rule is deliberately *not* allowable.
#[must_use]
pub fn is_known_rule(name: &str) -> bool {
    name != crate::allow::ALLOW_RULE && static_rule_name(name).is_some()
}

/// Maps a rule name to its `&'static str` identity — the full catalogue,
/// both layers plus the allow-discipline meta-rule. Used by the incremental
/// cache to restore static rule names from parsed text.
#[must_use]
pub fn static_rule_name(name: &str) -> Option<&'static str> {
    for r in all_rules() {
        if r.name() == name {
            return Some(r.name());
        }
    }
    for r in workspace_rules() {
        if r.name() == name {
            return Some(r.name());
        }
    }
    if name == crate::allow::ALLOW_RULE {
        return Some(crate::allow::ALLOW_RULE);
    }
    None
}

/// Shared constructor for rule findings.
pub(crate) fn diag(
    view: &FileView<'_>,
    rule: &'static str,
    tok: &Token,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        path: view.ctx.path.clone(),
        line: tok.line,
        col: tok.col,
        message,
    }
}
