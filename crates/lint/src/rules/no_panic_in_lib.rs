//! `no-panic-in-lib`: library code must not reserve the right to abort the
//! process.
//!
//! Behind a long-running [`VenueServer`] a single `.unwrap()` on a malformed
//! query or a poisoned invariant takes a whole worker pool down. Library
//! code of the algorithm crates therefore returns typed errors; the places
//! where an invariant really is locally provable carry a justified allow
//! instead.
//!
//! Flags, outside tests/benches/examples and `#[cfg(test)]` regions of
//! [`crate::source::LIB_DISCIPLINE_CRATES`]:
//!
//! * `.unwrap()` / `.expect(..)` method calls (lexical — the receiver's type
//!   is unknown, so `Result`, `Option` and anything else shaped like them
//!   are all flagged);
//! * the diverging macros `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`.
//!
//! `assert!`/`debug_assert!` are deliberately *not* flagged: stating an
//! invariant is encouraged, silently unwrapping past one is not.
//!
//! [`VenueServer`]: ../../itspq_core/server/struct.VenueServer.html

use crate::diag::Diagnostic;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::FileView;

/// See the module docs.
pub struct NoPanicInLib;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

impl Rule for NoPanicInLib {
    fn name(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/unreachable! in library code of the algorithm crates"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if !view.ctx.lib_discipline() {
            return;
        }
        for i in 0..view.code_len() {
            if view.in_test_region(i) {
                continue;
            }
            let text = view.ctext(i);
            let Some(tok) = view.ct(i) else { continue };
            if PANIC_MACROS.contains(&text) && view.ctext(i + 1) == "!" {
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    format!(
                        "`{text}!` in library code of `{}` aborts the caller; \
                         return a typed error instead",
                        view.ctx.crate_name
                    ),
                ));
            } else if PANIC_METHODS.contains(&text)
                && view.ctext(i.wrapping_sub(1)) == "."
                && view.ctext(i + 1) == "("
                && i > 0
            {
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    format!(
                        "`.{text}(..)` in library code of `{}` panics on the error path; \
                         propagate a typed error, or prove the invariant in a justified allow",
                        view.ctx.crate_name
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = classify(path);
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        NoPanicInLib.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    #[test]
    fn flags_unwrap_expect_and_macros_in_lib() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"no\"); unreachable!(); }\n";
        let out = run("crates/core/src/a.rs", src);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|d| d.rule == "no-panic-in-lib"));
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn ignores_tests_benches_examples_vendor_and_bench_crate() {
        let src = "fn f() { x.unwrap(); }\n";
        for path in [
            "crates/core/tests/t.rs",
            "crates/bench/src/runner.rs",
            "crates/bench/benches/b.rs",
            "examples/e.rs",
            "crates/vendor/serde/src/lib.rs",
        ] {
            assert!(run(path, src).is_empty(), "{path}");
        }
    }

    #[test]
    fn ignores_cfg_test_region_and_comments_and_strings() {
        let src = "\
// a comment mentioning x.unwrap()\n\
const S: &str = \"panic!\";\n\
#[cfg(test)]\nmod tests { fn t() { x.unwrap(); panic!(); } }\n";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_variants_are_fine() {
        let src = "fn f() { x.unwrap_or(0); x.unwrap_or_else(f); x.unwrap_or_default(); }\n";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn asserts_are_fine() {
        let src = "fn f() { assert!(a); assert_eq!(a, b); debug_assert!(c); }\n";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }

    #[test]
    fn field_named_unwrap_is_not_a_call() {
        let src = "fn f() { let a = s.unwrap; g(unwrap()); }\n";
        assert!(run("crates/core/src/a.rs", src).is_empty());
    }
}
