//! `float-total-order`: float comparisons must survive NaN.
//!
//! The query engines order doors by `f64` distances. `partial_cmp` returns
//! `None` on NaN — so `partial_cmp(..).unwrap()` panics the worker, and a
//! `PartialOrd`-based heap silently mis-orders. The workspace idiom is
//! `f64::total_cmp` (or `itspq_core::ord::{cmp_dist, OrdF64}` above the core
//! crate), which is total over every bit pattern.
//!
//! Flags, in library code of the disciplined crates outside test regions:
//!
//! * `.partial_cmp(..)` immediately followed by `.unwrap()` / `.expect(..)`
//!   — the NaN panic waiting to happen;
//! * `==` / `!=` where either side is a floating-point *literal* (the
//!   lexical proxy for float equality; identifier-typed floats are invisible
//!   to a lexer and are covered by clippy's `float_cmp` instead).

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::FileView;

/// See the module docs.
pub struct FloatTotalOrder;

impl Rule for FloatTotalOrder {
    fn name(&self) -> &'static str {
        "float-total-order"
    }

    fn description(&self) -> &'static str {
        "no NaN-unsafe partial_cmp().unwrap() chains or ==/!= against float literals"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if !view.ctx.lib_discipline() {
            return;
        }
        for i in 0..view.code_len() {
            if view.in_test_region(i) {
                continue;
            }
            let Some(tok) = view.ct(i) else { continue };
            let text = view.ctext(i);

            // `.partial_cmp(x).unwrap()` / `.expect(..)`.
            if text == "partial_cmp"
                && i > 0
                && view.ctext(i.wrapping_sub(1)) == "."
                && view.ctext(i + 1) == "("
            {
                let after_args = view.skip_balanced(i + 1);
                let method = view.ctext(after_args + 1);
                if view.ctext(after_args) == "."
                    && (method == "unwrap" || method == "expect")
                    && view.ctext(after_args + 2) == "("
                {
                    out.push(diag(
                        view,
                        self.name(),
                        tok,
                        format!(
                            "`partial_cmp(..).{method}(..)` panics (or lies) on NaN; \
                             use `f64::total_cmp` or `itspq_core::ord::cmp_dist`"
                        ),
                    ));
                }
            }

            // `x == 1.0` / `1.0 != y`.
            if text == "==" || text == "!=" {
                let float_left = view.ckind(i.wrapping_sub(1)) == Some(TokenKind::Float) && i > 0;
                let float_right = view.ckind(i + 1) == Some(TokenKind::Float);
                if float_left || float_right {
                    out.push(diag(
                        view,
                        self.name(),
                        tok,
                        format!(
                            "bare `{text}` against a float literal is NaN- and \
                             rounding-hostile; compare with an epsilon or a total order"
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(src: &str) -> Vec<Diagnostic> {
        let ctx = classify("crates/core/src/a.rs");
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        FloatTotalOrder.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    #[test]
    fn flags_partial_cmp_unwrap_and_expect() {
        let out = run(
            "fn f() { v.min_by(|a, b| a.partial_cmp(&b.len).expect(\"finite\")); \
             x.partial_cmp(&y).unwrap(); }\n",
        );
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|d| d.rule == "float-total-order"));
    }

    #[test]
    fn bare_partial_cmp_is_fine() {
        // Returning the Option, or defaulting it, is NaN-aware.
        assert!(run("fn f() { a.partial_cmp(&b).unwrap_or(Ordering::Equal); }\n").is_empty());
        assert!(run("fn partial_cmp(&self, o: &Self) -> Option<Ordering> { None }\n").is_empty());
    }

    #[test]
    fn flags_float_literal_equality_both_sides() {
        assert_eq!(run("fn f() -> bool { x == 1.0 }\n").len(), 1);
        assert_eq!(run("fn f() -> bool { 0.5 != y }\n").len(), 1);
        assert_eq!(run("fn f() -> bool { x == 1e-3 }\n").len(), 1);
    }

    #[test]
    fn integer_equality_and_comparisons_are_fine() {
        assert!(run("fn f() -> bool { x == 1 && y != 2 && z <= 3.0 }\n").is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src =
            "#[cfg(test)]\nmod t { fn g() { assert!(x == 1.0); a.partial_cmp(&b).unwrap(); } }\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn total_cmp_is_the_blessed_idiom() {
        assert!(run("fn f() { xs.sort_by(|a, b| a.total_cmp(b)); }\n").is_empty());
    }
}
