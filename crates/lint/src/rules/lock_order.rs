//! `lock-order`: the workspace lock-acquisition graph must be acyclic.
//!
//! An edge `A → B` means some function can wait on lock class `B` while
//! holding `A` — either by nesting two acquisitions directly or by calling
//! (while holding `A`) a function that transitively acquires `B`. A cycle
//! in that graph is a deadlock waiting for the right interleaving: two
//! workers entering the cycle from different classes block each other
//! forever, and the batch engine's parity harness can't even observe it —
//! the run just hangs.
//!
//! Each cycle is reported **once**, at the witness site of one of its
//! edges, with the full class cycle and the functions it threads through.
//! The fix is a global acquisition order (acquire in cycle-breaking order,
//! or collapse the two locks into one); an allow needs to argue why the
//! interleaving is impossible (e.g. the two paths are proven mutually
//! exclusive).
//!
//! Resolution is the approximate same-crate call graph of [`crate::graph`]:
//! over-approximate, so a reported cycle can be a false positive through an
//! infeasible path — but a real cycle through resolvable calls is never
//! missed.

use std::collections::BTreeMap;

use crate::diag::{Diagnostic, Severity};
use crate::graph::{LockEdge, Workspace};
use crate::rules::WorkspaceRule;

/// See the module docs.
pub struct LockOrder;

impl WorkspaceRule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }

    fn description(&self) -> &'static str {
        "the workspace lock-acquisition graph must be acyclic (deadlock freedom)"
    }

    fn check(&self, ws: &Workspace, out: &mut Vec<Diagnostic>) {
        let edges = ws.lock_edges();
        let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
        for e in &edges {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
        let mut reported: Vec<Vec<String>> = Vec::new();
        for e in &edges {
            if e.from == e.to {
                // Direct re-entrant acquisition: a cycle of length one.
                let sig = vec![e.from.clone()];
                if reported.contains(&sig) {
                    continue;
                }
                reported.push(sig);
                out.push(cycle_diag(
                    e,
                    std::slice::from_ref(&e.from),
                    std::slice::from_ref(&e.via_fn),
                ));
                continue;
            }
            // Cycle through e: does e.to reach e.from?
            let Some(back) = path(&adj, &e.to, &e.from) else {
                continue;
            };
            // Canonical signature: the sorted class set of the cycle.
            let mut classes: Vec<String> = std::iter::once(e.from.clone())
                .chain(back.iter().map(|b| b.from.clone()))
                .collect();
            classes.sort();
            classes.dedup();
            if reported.contains(&classes) {
                continue;
            }
            reported.push(classes);
            let cycle: Vec<String> = std::iter::once(e.from.clone())
                .chain(std::iter::once(e.to.clone()))
                .chain(back.iter().skip(1).map(|b| b.from.clone()))
                .collect();
            let vias: Vec<String> = std::iter::once(e.via_fn.clone())
                .chain(back.iter().map(|b| b.via_fn.clone()))
                .collect();
            out.push(cycle_diag(e, &cycle, &vias));
        }
    }
}

/// Shortest edge path `from → … → to` in the lock graph (BFS; `None` when
/// unreachable). Returns the edges along the path.
fn path<'a>(
    adj: &BTreeMap<&str, Vec<&'a LockEdge>>,
    from: &str,
    to: &str,
) -> Option<Vec<&'a LockEdge>> {
    let mut prev: BTreeMap<&str, &'a LockEdge> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(from);
    while let Some(cur) = queue.pop_front() {
        if cur == to {
            let mut chain: Vec<&'a LockEdge> = Vec::new();
            let mut c = cur;
            while c != from {
                let e = prev[c];
                chain.push(e);
                c = e.from.as_str();
            }
            chain.reverse();
            return Some(chain);
        }
        for e in adj.get(cur).map(Vec::as_slice).unwrap_or_default() {
            let nxt = e.to.as_str();
            if nxt != from && !prev.contains_key(nxt) {
                prev.insert(nxt, e);
                queue.push_back(nxt);
            }
        }
    }
    None
}

fn cycle_diag(witness: &LockEdge, cycle: &[String], vias: &[String]) -> Diagnostic {
    let mut ring = cycle.join(" -> ");
    ring.push_str(" -> ");
    ring.push_str(&cycle[0]);
    let mut fns: Vec<&str> = vias.iter().map(String::as_str).collect();
    fns.dedup();
    Diagnostic {
        rule: "lock-order",
        severity: Severity::Error,
        path: witness.path.clone(),
        line: witness.line,
        col: witness.col,
        message: format!(
            "lock-order cycle {ring} (via {}) — here {}; break the cycle with a \
             global acquisition order or merge the locks",
            fns.join(", "),
            witness.how
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::extract_facts;
    use crate::parser::parse;
    use crate::source::{classify, FileView};

    fn workspace_of(files: &[(&str, &str)]) -> Workspace {
        let mut fns = Vec::new();
        for (path, src) in files {
            let ctx = classify(path);
            let view = FileView::new(&ctx, src);
            let tree = parse(&view);
            let (allows, _) = crate::allow::collect_allows(&view);
            fns.extend(extract_facts(&view, &tree, &allows));
        }
        Workspace::build(fns)
    }

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        LockOrder.check(&workspace_of(files), &mut out);
        out
    }

    #[test]
    fn two_lock_cycle_across_files_is_one_finding() {
        let a = "fn ab(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); g.m(h); }\n";
        let b = "fn ba(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); g.m(h); }\n";
        let out = run(&[("crates/core/src/a.rs", a), ("crates/core/src/b.rs", b)]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("core::alpha"));
        assert!(out[0].message.contains("core::beta"));
    }

    #[test]
    fn consistent_nesting_is_clean() {
        let a = "fn ab(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); g.m(h); }\n";
        let b =
            "fn also_ab(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); g.m(h); }\n";
        assert!(run(&[("crates/core/src/a.rs", a), ("crates/core/src/b.rs", b),]).is_empty());
    }

    #[test]
    fn interprocedural_cycle_is_found() {
        let src = "\
fn left(&self) { let g = self.alpha.lock(); helper(g.k()); }\n\
fn helper(k: u32) { let h = SHARED.beta.lock(); h.t(k); }\n\
fn right(&self) { let g = SHARED.beta.lock(); other(g.k()); }\n\
fn other(k: u32) { let h = SELF.alpha.lock(); h.t(k); }\n";
        // `self.alpha` and `SELF.alpha` are different chains; align them.
        let src = src.replace("SELF.alpha", "self.alpha");
        // self-receiver elides, so the class is `core::alpha` both times —
        // but `SHARED.beta` renders `core::SHARED.beta` consistently.
        let out = run(&[("crates/core/src/a.rs", src.as_str())]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cycle"));
    }

    #[test]
    fn reentrant_same_lock_is_a_unit_cycle() {
        let src = "fn f(&self) { let g = self.alpha.lock(); let h = self.alpha.lock(); g.m(h); }\n";
        let out = run(&[("crates/core/src/a.rs", src)]);
        assert_eq!(out.len(), 1, "{out:?}");
    }
}
