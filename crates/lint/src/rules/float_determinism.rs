//! `float-determinism`: float arithmetic on the answer path must be
//! bit-reproducible and totally ordered.
//!
//! The parity certificates promise byte-identical batch answers across
//! worker counts and plan shapes. Three float idioms silently break that:
//!
//! * **`mul_add`** — fused multiply-add rounds once where `a * b + c`
//!   rounds twice; whether the two agree depends on the target's FMA
//!   codegen, so the same plan can produce different bytes on different
//!   machines. Write the two-rounding form explicitly.
//! * **comparator closures built on `partial_cmp`** — `sort_by`,
//!   `min_by`, `max_by` with a partial order are non-total on NaN and can
//!   reorder equal-keyed elements differently depending on input order.
//!   Use `f64::total_cmp` or the workspace's `core::ord` helpers.
//! * **unordered float reductions** — `.sum::<f32|f64>()` /
//!   `.product::<…>()` over an iterator whose order is not pinned
//!   re-associates rounding. Reduce in a deterministic order (sorted keys,
//!   `fold` over a slice) or keep the quantity integral.
//!
//! Scope: parity-critical modules only (see
//! [`crate::source::PARITY_CRITICAL_FILES`]), outside test regions.

use crate::diag::Diagnostic;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::FileView;

/// Comparator-taking methods checked for `partial_cmp` closures.
const BY_METHODS: &[&str] = &["sort_by", "sort_unstable_by", "min_by", "max_by"];

/// See the module docs.
pub struct FloatDeterminism;

impl Rule for FloatDeterminism {
    fn name(&self) -> &'static str {
        "float-determinism"
    }

    fn description(&self) -> &'static str {
        "no mul_add, partial_cmp comparators or unordered float sums in parity-critical modules"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if !view.ctx.parity_critical() {
            return;
        }
        for i in 0..view.code_len() {
            if view.in_test_region(i) {
                continue;
            }
            let text = view.ctext(i);
            let after_dot = i > 0 && view.ctext(i - 1) == ".";
            let Some(tok) = view.ct(i) else { continue };

            if text == "mul_add" && after_dot && view.ctext(i + 1) == "(" {
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    "`mul_add` fuses to one rounding only where the target emits FMA; \
                     answers would differ across machines — write `a * b + c` so every \
                     build rounds twice"
                        .to_string(),
                ));
                continue;
            }

            if BY_METHODS.contains(&text) && after_dot && view.ctext(i + 1) == "(" {
                let end = view.skip_balanced(i + 1);
                if (i + 1..end).any(|j| view.ctext(j) == "partial_cmp") {
                    out.push(diag(
                        view,
                        self.name(),
                        tok,
                        format!(
                            "`{text}` with a `partial_cmp` comparator is not a total order \
                             (NaN) and is input-order-sensitive; use `total_cmp` or the \
                             `core::ord` helpers"
                        ),
                    ));
                }
                continue;
            }

            if (text == "sum" || text == "product")
                && after_dot
                && view.ctext(i + 1) == "::"
                && view.ctext(i + 2) == "<"
                && matches!(view.ctext(i + 3), "f32" | "f64")
            {
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    format!(
                        "unordered float `.{text}::<{}>()` re-associates rounding; reduce \
                         in a pinned order (sorted keys, slice fold) or keep the quantity \
                         integral",
                        view.ctext(i + 3)
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = classify(path);
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        FloatDeterminism.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    const PARITY: &str = "crates/core/src/framework.rs";

    #[test]
    fn flags_mul_add() {
        let src = "fn f(a: f64, b: f64, c: f64) -> f64 { a.mul_add(b, c) }\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("FMA"));
    }

    #[test]
    fn flags_partial_cmp_comparators() {
        let src = "\
fn f(xs: &mut [f64]) {\n\
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());\n\
    let m = xs.iter().min_by(|a, b| a.partial_cmp(b).unwrap());\n\
}\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn total_cmp_comparators_are_fine() {
        let src = "fn f(xs: &mut [f64]) { xs.sort_by(f64::total_cmp); }\n";
        assert!(run(PARITY, src).is_empty());
    }

    #[test]
    fn flags_float_turbofish_sum_but_not_integer_sum() {
        let src = "\
fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }\n\
fn g(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("f64"));
    }

    #[test]
    fn non_parity_files_are_out_of_scope() {
        let src = "fn f(a: f64, b: f64, c: f64) -> f64 { a.mul_add(b, c) }\n";
        assert!(run("crates/bench/src/runner.rs", src).is_empty());
        assert!(run("crates/core/src/heap.rs", src).is_empty());
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn close(a: f64, b: f64, c: f64) -> f64 { a.mul_add(b, c) }\n\
}\n";
        assert!(run(PARITY, src).is_empty());
    }
}
