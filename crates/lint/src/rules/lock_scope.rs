//! `lock-scope`: lock guards must not live across expensive or re-entrant
//! calls.
//!
//! This machine-checks the view-cache rule from the `AsynEngine` work: a
//! `parking_lot` guard held across `ReducedGraph::build` (or any
//! user-supplied closure) serialises every worker behind one build — or
//! self-deadlocks when the callee takes the same lock. The blessed shapes
//! are (a) a guard as a *temporary* that dies at the end of its statement
//! (`self.cache.read().get(&k).cloned()`), or (b) a `let`-bound guard in a
//! minimal block that ends before any build/closure call.
//!
//! Flags, in library code of the disciplined crates outside test regions: a
//! `let` statement whose initialiser *ends with* `.read()`, `.write()`,
//! `.lock()`, `.try_read()`, `.try_write()` or `.try_lock()` — i.e. the
//! binding **is** the guard — when, between that statement and the end of
//! its enclosing block, there is a call whose name starts with `build` (or
//! is `get_or_init` / `or_insert_with` / `force`) or a closure literal.
//! Guards that die inside their own statement are never flagged.

use crate::diag::Diagnostic;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::FileView;

/// See the module docs.
pub struct LockScope;

const GUARD_METHODS: &[&str] = &["read", "write", "lock", "try_read", "try_write", "try_lock"];
const BUILD_CALLS: &[&str] = &["get_or_init", "or_insert_with", "force"];

impl Rule for LockScope {
    fn name(&self) -> &'static str {
        "lock-scope"
    }

    fn description(&self) -> &'static str {
        "no let-bound lock guard living across a cache-build or closure call"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if !view.ctx.lib_discipline() {
            return;
        }
        for i in 0..view.code_len() {
            if view.ctext(i) != "let" || view.in_test_region(i) {
                continue;
            }
            let Some(stmt_end) = statement_end(view, i) else {
                continue;
            };
            // Initialiser must end `.guard_method()` — the binding is a guard.
            let is_guard = stmt_end >= 4
                && view.ctext(stmt_end - 1) == ")"
                && view.ctext(stmt_end - 2) == "("
                && GUARD_METHODS.contains(&view.ctext(stmt_end - 3))
                && view.ctext(stmt_end - 4) == ".";
            if !is_guard {
                continue;
            }
            if let Some(hazard) = hazard_in_rest_of_block(view, stmt_end + 1) {
                let Some(tok) = view.ct(i) else { continue };
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    format!(
                        "lock guard bound by `let` is still live at the call to `{hazard}`; \
                         drop the guard first (narrow block or temporary) or justify the hold"
                    ),
                ));
            }
        }
    }
}

/// Code index of the `;` ending the statement opened at `i`, staying at the
/// statement's own bracket depth. `None` when the block ends first (a tail
/// expression, not a `let` statement).
fn statement_end(view: &FileView<'_>, i: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = i + 1;
    while j < view.code_len() {
        match view.ctext(j) {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            ";" if depth == 0 => return Some(j),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Scans from `from` to the end of the enclosing block; returns the name of
/// the first build-like call or `"a closure"` for a closure literal.
fn hazard_in_rest_of_block(view: &FileView<'_>, from: usize) -> Option<String> {
    let mut depth = 0i64;
    let mut j = from;
    while j < view.code_len() {
        let text = view.ctext(j);
        match text {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" => depth -= 1,
            "}" => {
                depth -= 1;
                if depth < 0 {
                    return None; // enclosing block ended: guard dropped
                }
            }
            _ => {
                let is_build_call = (text.starts_with("build") || BUILD_CALLS.contains(&text))
                    && view.ctext(j + 1) == "(";
                if is_build_call {
                    return Some(text.to_string());
                }
                if is_closure_start(view, j) {
                    return Some("a closure".to_string());
                }
            }
        }
        j += 1;
    }
    None
}

/// A `|` / `||` token opening a closure literal: preceded by a token that
/// cannot end an operand (so it cannot be bitwise/logical "or" or a match
/// pattern alternative).
fn is_closure_start(view: &FileView<'_>, j: usize) -> bool {
    let text = view.ctext(j);
    if text != "|" && text != "||" {
        return false;
    }
    matches!(
        view.ctext(j.wrapping_sub(1)),
        "(" | "," | "=" | "=>" | "return" | "move" | "{" | ";"
    ) && j > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(src: &str) -> Vec<Diagnostic> {
        let ctx = classify("crates/core/src/a.rs");
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        LockScope.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    #[test]
    fn guard_held_across_build_is_flagged() {
        let src = "\
fn f(&self) {\n\
    let cache = self.cache.write();\n\
    let view = ReducedGraph::build(space, t);\n\
    cache.insert(k, view);\n\
}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].line, 2);
        assert!(out[0].message.contains("build"));
    }

    #[test]
    fn guard_held_across_closure_is_flagged() {
        let src = "\
fn f(&self) {\n\
    let cache = self.cache.write();\n\
    let v = slot.get_or_init(|| heavy());\n\
}\n";
        let out = run(src);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn temporary_guard_is_fine() {
        // The guard dies at the end of its own statement.
        let src = "fn f(&self) {\n    let probed = self.cache.read().get(&idx).map(Arc::clone);\n    let v = build(probed);\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn narrowly_scoped_guard_is_fine() {
        // The engine's real shape: the write guard lives only inside the
        // match arm; the build happens after the arm's block closed.
        let src = "\
fn f(&self) {\n\
    let slot = match probed {\n\
        Some(s) => s,\n\
        None => {\n\
            let mut cache = self.cache.write();\n\
            Arc::clone(cache.entry(idx).or_default())\n\
        }\n\
    };\n\
    let view = slot.get_or_init(|| Arc::new(ReducedGraph::build(space, t)));\n\
}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn guard_followed_by_plain_reads_is_fine() {
        let src = "fn f(&self) {\n    let g = self.map.read();\n    g.len()\n}\n";
        assert!(run(src).is_empty());
    }

    #[test]
    fn or_patterns_are_not_closures() {
        let src = "\
fn f(&self) {\n\
    let g = self.map.read();\n\
    match x { A | B => {} _ => {} }\n\
}\n";
        assert!(run(src).is_empty());
    }
}
