//! `nondet-iteration`: no result-affecting hash-order iteration on the
//! answer path.
//!
//! `HashMap`/`HashSet` iteration order is unspecified and varies run-to-run
//! (`RandomState`), so any loop over one that feeds an answer, a plan, or a
//! `BatchStats` field silently breaks the byte-identical-batch and
//! worker-count-independence certificates. In the parity-critical modules
//! (see [`crate::source::PARITY_CRITICAL_FILES`]) this rule bans iterating
//! hash containers at all: keyed *lookup* is fine, *enumeration* is not.
//! Use `BTreeMap`/`BTreeSet`, or collect-and-sort before the result matters.
//!
//! ## Approximation
//!
//! A hash container is recognised where the file itself says so: an
//! identifier annotated `: …HashMap…`/`: …HashSet…` (struct field, `let`,
//! or parameter) or bound by `let x = HashMap::new()/with_capacity(..)`.
//! Iteration is a call to an enumerating method (`iter`, `keys`, `values`,
//! `drain`, `retain`, `into_iter`, …) whose receiver chain mentions a
//! tainted identifier, or a `for … in` header mentioning one. Hash
//! containers smuggled in behind type aliases or function returns are not
//! seen — keep the annotation near the use, as the workspace style already
//! does.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::FileView;

/// Methods that enumerate a container in storage order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "into_iter",
    "drain",
    "retain",
];

/// The hash container type names that taint an identifier.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// See the module docs.
pub struct NondetIteration;

impl Rule for NondetIteration {
    fn name(&self) -> &'static str {
        "nondet-iteration"
    }

    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration in parity-critical modules; use BTreeMap or sort first"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if !view.ctx.parity_critical() {
            return;
        }
        let tainted = tainted_idents(view);
        if tainted.is_empty() {
            return;
        }
        let mut i = 0;
        while i < view.code_len() {
            if view.in_test_region(i) {
                i += 1;
                continue;
            }
            let text = view.ctext(i);
            // `.iter()` etc. on a tainted receiver chain.
            if ITER_METHODS.contains(&text)
                && view.ctext(i.wrapping_sub(1)) == "."
                && i > 0
                && view.ctext(i + 1) == "("
            {
                if let Some(name) = chain_hits(view, i - 1, &tainted) {
                    let Some(tok) = view.ct(i) else { break };
                    out.push(diag(
                        view,
                        self.name(),
                        tok,
                        format!(
                            "`.{text}()` on hash container `{name}` iterates in unspecified \
                             order in a parity-critical module; use a BTreeMap/BTreeSet or \
                             sort before the result can reach an answer"
                        ),
                    ));
                    i += 1;
                    continue;
                }
            }
            // `for pat in <header> {` mentioning a tainted ident without an
            // explicit enumerating method (that case is flagged above).
            if text == "for" {
                if let Some((hit, line_tok)) = for_header_hits(view, i, &tainted) {
                    out.push(diag(
                        view,
                        self.name(),
                        line_tok,
                        format!(
                            "`for` loop over hash container `{hit}` iterates in unspecified \
                             order in a parity-critical module; use a BTreeMap/BTreeSet or \
                             sort before the result can reach an answer"
                        ),
                    ));
                }
            }
            i += 1;
        }
    }
}

/// Identifiers the file declares with a hash-container type.
fn tainted_idents(view: &FileView<'_>) -> Vec<String> {
    let mut tainted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < view.code_len() {
        // `name : … HashMap< … >` — struct field, let annotation, parameter.
        if view.ckind(i) == Some(TokenKind::Ident) && view.ctext(i + 1) == ":" {
            let name = view.ctext(i).to_string();
            let mut j = i + 2;
            let mut depth = 0i64;
            while j < view.code_len() {
                match view.ctext(j) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" if depth > 0 => depth -= 1,
                    ")" | "]" | "}" | ";" | "=" => break,
                    "," if depth == 0 => break,
                    t if HASH_TYPES.contains(&t) => {
                        if !tainted.contains(&name) {
                            tainted.push(name.clone());
                        }
                        break;
                    }
                    _ => {}
                }
                j = j.saturating_add(1);
                if j > i + 40 {
                    break; // type annotations are short; don't scan forever
                }
            }
        }
        // `let [mut] name = HashMap::new()` / `HashSet::with_capacity(..)`.
        if view.ctext(i) == "let" {
            let mut j = i + 1;
            if view.ctext(j) == "mut" {
                j += 1;
            }
            if view.ckind(j) == Some(TokenKind::Ident)
                && view.ctext(j + 1) == "="
                && HASH_TYPES.contains(&view.ctext(j + 2))
            {
                let name = view.ctext(j).to_string();
                if !tainted.contains(&name) {
                    tainted.push(name);
                }
            }
        }
        i += 1;
    }
    tainted
}

/// Walks the dotted receiver chain backwards from `dot_idx` and returns the
/// first tainted identifier it mentions. Call parentheses are hopped over,
/// so `self.cache.read().values()` sees `cache` through the `.read()`.
fn chain_hits(view: &FileView<'_>, dot_idx: usize, tainted: &[String]) -> Option<String> {
    let mut j = dot_idx;
    loop {
        let mut prev = j.checked_sub(1)?;
        if view.ctext(prev) == ")" {
            // Hop the argument list of an intermediate call; the method
            // name sits just before the matching `(`.
            prev = backward_match(view, prev)?.checked_sub(1)?;
        }
        if view.ckind(prev) != Some(TokenKind::Ident) {
            return None;
        }
        let t = view.ctext(prev);
        if tainted.iter().any(|x| x == t) {
            return Some(t.to_string());
        }
        if prev >= 1 && view.ctext(prev - 1) == "." {
            j = prev - 1;
            continue;
        }
        return None;
    }
}

/// Code index of the `(` matching the `)` at `close`, scanning backwards.
fn backward_match(view: &FileView<'_>, close: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut j = close;
    loop {
        match view.ctext(j) {
            ")" => depth += 1,
            "(" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j = j.checked_sub(1)?;
    }
}

/// Scans a `for … in <expr> {` header starting at the `for` keyword; returns
/// the tainted identifier and the `for` token when the iterated expression
/// mentions one *without* an explicit `ITER_METHODS` call (those sites are
/// already flagged at the method).
fn for_header_hits<'a>(
    view: &'a FileView<'_>,
    for_idx: usize,
    tainted: &[String],
) -> Option<(String, &'a crate::lexer::Token)> {
    // Find the `in` at depth 0, then the `{` opening the body.
    let mut j = for_idx + 1;
    let mut depth = 0i64;
    while j < view.code_len() && !(depth == 0 && view.ctext(j) == "in") {
        match view.ctext(j) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" => return None, // not a for-loop header after all
            _ => {}
        }
        j += 1;
    }
    let mut hit: Option<String> = None;
    let mut has_iter_method = false;
    let mut k = j + 1;
    while k < view.code_len() && !(depth == 0 && view.ctext(k) == "{") {
        match view.ctext(k) {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            t if ITER_METHODS.contains(&t) && view.ctext(k.wrapping_sub(1)) == "." => {
                has_iter_method = true;
            }
            t if hit.is_none() && tainted.iter().any(|x| x == t) => {
                hit = Some(t.to_string());
            }
            _ => {}
        }
        k += 1;
    }
    match (hit, has_iter_method) {
        (Some(name), false) => view.ct(for_idx).map(|tok| (name, tok)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = classify(path);
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        NondetIteration.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    const PARITY: &str = "crates/core/src/server.rs";

    #[test]
    fn flags_values_iteration_on_declared_hash_field() {
        let src = "\
struct S { group_of: HashMap<Key, usize> }\n\
impl S { fn f(&self) -> usize { self.group_of.values().sum() } }\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("group_of"));
    }

    #[test]
    fn flags_for_loop_over_hash_let_binding() {
        let src = "\
fn f() {\n\
    let seen = HashMap::new();\n\
    for (k, v) in &seen { touch(k, v); }\n\
}\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 1, "{out:?}");
    }

    #[test]
    fn keyed_lookup_is_fine() {
        let src = "\
struct S { group_of: HashMap<Key, usize> }\n\
impl S { fn f(&self, k: &Key) -> Option<usize> { self.group_of.get(k).copied() } }\n";
        assert!(run(PARITY, src).is_empty());
    }

    #[test]
    fn btreemap_iteration_is_fine() {
        let src = "\
struct S { group_of: BTreeMap<Key, usize> }\n\
impl S { fn f(&self) -> usize { self.group_of.values().sum() } }\n";
        assert!(run(PARITY, src).is_empty());
    }

    #[test]
    fn non_parity_files_are_out_of_scope() {
        let src = "\
struct S { m: HashMap<u32, u32> }\n\
impl S { fn f(&self) -> u32 { self.m.values().sum() } }\n";
        assert!(run("crates/core/src/heap.rs", src).is_empty());
    }

    #[test]
    fn for_loop_with_explicit_iter_method_is_flagged_once() {
        let src = "\
fn f() {\n\
    let seen = HashMap::new();\n\
    for k in seen.keys() { touch(k); }\n\
}\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains(".keys()"));
    }

    #[test]
    fn guard_method_between_container_and_iteration_is_seen_through() {
        let src = "\
struct S { cache: RwLock<HashMap<usize, Slot>> }\n\
impl S { fn n(&self) -> usize { self.cache.read().values().count() } }\n";
        let out = run(PARITY, src);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("cache"));
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "\
#[cfg(test)]\n\
mod tests {\n\
    fn f() { let m = HashMap::new(); for k in m.keys() { touch(k); } }\n\
}\n";
        assert!(run(PARITY, src).is_empty());
    }
}
