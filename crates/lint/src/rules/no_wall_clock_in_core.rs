//! `no-wall-clock-in-core`: algorithm code never reads the machine clock.
//!
//! Query semantics in `itspq-core` are functions of the *query's* departure
//! time, never of when the process happens to run: determinism is what makes
//! worker-count-independence and the sequential-parity tests meaningful.
//! Timing lives in `crates/bench`.
//!
//! Flags any use of the identifiers `Instant` or `SystemTime` (imports
//! included) in library code of `crates/core` outside test regions. Temporal
//! *model* types (`TimeOfDay`, `Timestamp`) are of course untouched.

use crate::diag::Diagnostic;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::{FileKind, FileView};

/// See the module docs.
pub struct NoWallClockInCore;

impl Rule for NoWallClockInCore {
    fn name(&self) -> &'static str {
        "no-wall-clock-in-core"
    }

    fn description(&self) -> &'static str {
        "no Instant/SystemTime in crates/core library code; timing belongs in bench"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if view.ctx.crate_name != "core" || view.ctx.kind != FileKind::Lib {
            return;
        }
        for i in 0..view.code_len() {
            if view.in_test_region(i) {
                continue;
            }
            let text = view.ctext(i);
            if text == "Instant" || text == "SystemTime" {
                let Some(tok) = view.ct(i) else { continue };
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    format!(
                        "`{text}` in core algorithm code breaks determinism; answers \
                         depend only on the query's departure time — measure in `crates/bench`"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = classify(path);
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        NoWallClockInCore.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    #[test]
    fn flags_instant_and_systemtime_in_core_lib() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }\n";
        assert_eq!(run("crates/core/src/engine_syn.rs", src).len(), 2);
        let src = "fn f() { let t = std::time::SystemTime::now(); }\n";
        assert_eq!(run("crates/core/src/engine_syn.rs", src).len(), 1);
    }

    #[test]
    fn bench_and_other_crates_keep_the_clock() {
        let src = "use std::time::Instant;\n";
        assert!(run("crates/bench/src/runner.rs", src).is_empty());
        assert!(run("crates/lint/src/main.rs", src).is_empty());
        assert!(run("crates/core/tests/timing.rs", src).is_empty());
    }

    #[test]
    fn temporal_model_types_are_untouched() {
        let src = "use indoor_time::{TimeOfDay, Timestamp};\nfn f(t: TimeOfDay) {}\n";
        assert!(run("crates/core/src/engine_syn.rs", src).is_empty());
    }

    #[test]
    fn core_test_regions_may_time() {
        let src = "#[cfg(test)]\nmod t { use std::time::Instant; }\n";
        assert!(run("crates/core/src/engine_syn.rs", src).is_empty());
    }
}
