//! `scoped-threads-only`: no detached threads outside the bench crate.
//!
//! The workspace concurrency idiom is `std::thread::scope`: workers borrow
//! the `Arc<ItGraph>` and the query slice, the scope joins them, and a
//! panicking worker surfaces at the join instead of detaching and leaking.
//! `std::thread::spawn` escapes that discipline — a spawned worker outlives
//! the batch, cannot borrow, and dies silently.
//!
//! Flags `thread::spawn` paths everywhere except `crates/bench` (whose
//! harnesses may reasonably background work) and vendored stubs. Scope
//! method calls (`scope.spawn(..)`) are the idiom and are not flagged.

use crate::diag::Diagnostic;
use crate::parser::ItemTree;
use crate::rules::{diag, Rule};
use crate::source::{FileKind, FileView};

/// See the module docs.
pub struct ScopedThreadsOnly;

impl Rule for ScopedThreadsOnly {
    fn name(&self) -> &'static str {
        "scoped-threads-only"
    }

    fn description(&self) -> &'static str {
        "no std::thread::spawn outside crates/bench; thread::scope is the idiom"
    }

    fn check(&self, view: &FileView<'_>, _tree: &ItemTree, out: &mut Vec<Diagnostic>) {
        if view.ctx.kind == FileKind::Vendor || view.ctx.crate_name == "bench" {
            return;
        }
        for i in 0..view.code_len() {
            if view.ctext(i) == "thread"
                && view.ctext(i + 1) == "::"
                && view.ctext(i + 2) == "spawn"
            {
                let Some(tok) = view.ct(i) else { continue };
                out.push(diag(
                    view,
                    self.name(),
                    tok,
                    "`thread::spawn` detaches from the batch lifecycle; \
                     use `std::thread::scope` (the workspace idiom) or move the \
                     harness into `crates/bench`"
                        .to_string(),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::classify;

    fn run(path: &str, src: &str) -> Vec<Diagnostic> {
        let ctx = classify(path);
        let view = FileView::new(&ctx, src);
        let mut out = Vec::new();
        ScopedThreadsOnly.check(&view, &crate::parser::parse(&view), &mut out);
        out
    }

    #[test]
    fn flags_thread_spawn_in_lib_and_tests() {
        let src = "fn f() { std::thread::spawn(move || work()); }\n";
        assert_eq!(run("crates/core/src/server.rs", src).len(), 1);
        assert_eq!(run("tests/concurrent_server.rs", src).len(), 1);
    }

    #[test]
    fn scope_spawn_is_the_idiom() {
        let src = "fn f() { std::thread::scope(|s| { s.spawn(|| work()); }); }\n";
        assert!(run("crates/core/src/server.rs", src).is_empty());
    }

    #[test]
    fn bench_crate_and_vendor_are_exempt() {
        let src = "fn f() { std::thread::spawn(move || work()); }\n";
        assert!(run("crates/bench/src/runner.rs", src).is_empty());
        assert!(run("crates/vendor/parking_lot/src/lib.rs", src).is_empty());
    }
}
