//! A brace-matched item-tree parser over the token stream.
//!
//! The token rules of PR 4 are single-file and flat; the graph rules
//! (`lock-order`, `panic-reachability`) need to know *which function* a
//! token belongs to, and the symbol table needs names with their nesting
//! (`module::Type::method`). This parser recovers exactly that much
//! structure — modules, functions, `impl`/`trait` blocks, `use` paths, each
//! with spans — and nothing more: no expressions, no types, no macro
//! expansion. It is infallible like the lexer: unparseable stretches are
//! skipped token-by-token (balanced-bracket groups as a unit), so a file
//! that confuses it degrades to *fewer* items, never to a crash.
//!
//! ## Approximations (documented, load-bearing)
//!
//! * Functions nested inside function bodies are not items — the fact
//!   extractor attributes their tokens to the enclosing function, which is
//!   conservative for panic- and lock-reachability.
//! * `impl` type names are the last path segment before generics
//!   (`impl<'a> Iterator for Iter<'a>` → `Iter`), which is how the call
//!   resolver keys methods.
//! * `#[cfg(test)]` gating is inherited from [`FileView::in_test_region`],
//!   so an item inside a test-gated module is test-gated too.

use crate::lexer::TokenKind;
use crate::source::FileView;

/// What kind of item a tree node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name { … }` or `mod name;`.
    Module,
    /// `fn name(…) { … }` (or a bodyless trait method).
    Fn,
    /// `impl [Trait for] Type { … }`.
    Impl,
    /// `trait Name { … }`.
    Trait,
    /// `struct` / `enum` / `union` definitions.
    Struct,
    /// `use path::to::thing;` (leaves recorded in [`ItemTree::imports`]).
    Use,
    /// `const NAME: … = …;` or `static NAME: … = …;`.
    Const,
    /// `type Alias = …;`.
    TypeAlias,
    /// `macro_rules! name { … }` or `macro name { … }`.
    MacroDef,
    /// `extern "C" { … }` foreign block.
    ExternBlock,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// The node's kind.
    pub kind: ItemKind,
    /// Simple name (`""` for anonymous items such as `impl` blocks keep the
    /// *type* name instead).
    pub name: String,
    /// For functions inside an `impl`/`trait` block: the owning type name.
    pub owner: Option<String>,
    /// Inline-module path from the file root down to this item.
    pub module_path: Vec<String>,
    /// 1-based line of the introducing keyword.
    pub line: u32,
    /// 1-based column of the introducing keyword.
    pub col: u32,
    /// Code-token index of the introducing keyword.
    pub sig_start: usize,
    /// Code-token index range of the `{ … }` body: `(open, one_past_close)`.
    pub body: Option<(usize, usize)>,
    /// Byte span of the whole item (first attribute to closing token).
    pub span: (usize, usize),
    /// Whether the item sits in a `#[cfg(test)]` region (directly gated or
    /// inside a gated module).
    pub cfg_test: bool,
    /// Child items (modules, `impl`/`trait` members).
    pub children: Vec<Item>,
}

impl Item {
    /// `module::sub::Type::name` — the symbol-table key of this item within
    /// its file.
    #[must_use]
    pub fn qual_name(&self) -> String {
        let mut parts: Vec<&str> = self.module_path.iter().map(String::as_str).collect();
        if let Some(o) = &self.owner {
            parts.push(o);
        }
        parts.push(&self.name);
        parts.join("::")
    }
}

/// One leaf of a `use` declaration, groups flattened:
/// `use std::collections::{HashMap, HashSet};` yields two imports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Import {
    /// The name the import binds locally (the alias after `as`, the last
    /// segment otherwise; `"*"` for globs).
    pub leaf: String,
    /// The full path as written, `::`-joined.
    pub path: String,
    /// 1-based line of the `use` keyword.
    pub line: u32,
}

/// The parsed file: top-level items plus the flattened import list.
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Top-level items in source order.
    pub items: Vec<Item>,
    /// Every `use` leaf in the file.
    pub imports: Vec<Import>,
}

impl ItemTree {
    /// All function items, depth-first, bodies included wherever they nest.
    #[must_use]
    pub fn fns(&self) -> Vec<&Item> {
        fn rec<'a>(items: &'a [Item], out: &mut Vec<&'a Item>) {
            for it in items {
                if it.kind == ItemKind::Fn {
                    out.push(it);
                }
                rec(&it.children, out);
            }
        }
        let mut out = Vec::new();
        rec(&self.items, &mut out);
        out
    }

    /// Whether `name` is imported (directly or via a group) from a path
    /// whose rendering contains `needle` — e.g.
    /// `imports_from("HashMap", "std::collections")`.
    #[must_use]
    pub fn imports_from(&self, name: &str, needle: &str) -> bool {
        self.imports
            .iter()
            .any(|im| im.leaf == name && im.path.contains(needle))
    }
}

/// Parses the file's item tree. Infallible; see the module docs for the
/// recovery strategy.
#[must_use]
pub fn parse(view: &FileView<'_>) -> ItemTree {
    let mut parser = Parser {
        view,
        imports: Vec::new(),
    };
    let mut module_path = Vec::new();
    let items = parser.items_in(0, view.code_len(), &mut module_path, None);
    ItemTree {
        items,
        imports: parser.imports,
    }
}

/// Keywords that may prefix an item before its introducing keyword.
const QUALIFIERS: &[&str] = &["default", "unsafe", "async"];

struct Parser<'a, 'b> {
    view: &'b FileView<'a>,
    imports: Vec<Import>,
}

impl Parser<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.view.ctext(i)
    }

    /// Parses the items in code-token range `[from, to)`.
    fn items_in(
        &mut self,
        from: usize,
        to: usize,
        module_path: &mut Vec<String>,
        owner: Option<&str>,
    ) -> Vec<Item> {
        let mut out = Vec::new();
        let mut i = from;
        while i < to {
            i = self.item_at(i, to, module_path, owner, &mut out);
        }
        out
    }

    /// Parses (or skips past) one item starting at code index `i`; returns
    /// the index just past it.
    #[allow(clippy::too_many_lines)]
    fn item_at(
        &mut self,
        start: usize,
        to: usize,
        module_path: &mut Vec<String>,
        owner: Option<&str>,
        out: &mut Vec<Item>,
    ) -> usize {
        let view = self.view;
        let mut i = start;

        // Attributes (outer `#[…]` and inner `#![…]`).
        loop {
            if self.text(i) == "#" && self.text(i + 1) == "[" {
                i = view.skip_balanced(i + 1);
            } else if self.text(i) == "#" && self.text(i + 1) == "!" && self.text(i + 2) == "[" {
                i = view.skip_balanced(i + 2);
            } else {
                break;
            }
            if i >= to {
                return to;
            }
        }

        // Visibility and qualifiers.
        loop {
            let t = self.text(i);
            if t == "pub" {
                i += 1;
                if self.text(i) == "(" {
                    i = view.skip_balanced(i);
                }
            } else if QUALIFIERS.contains(&t) {
                i += 1;
            } else if t == "const" && self.text(i + 1) == "fn" {
                i += 1; // `const fn` — the `fn` is the item keyword
            } else if t == "extern" {
                // `extern "C" fn` prefix, or an `extern "C" { … }` block.
                let after_abi = if view.ckind(i + 1) == Some(TokenKind::Str) {
                    i + 2
                } else {
                    i + 1
                };
                if self.text(after_abi) == "{" {
                    let end = view.skip_balanced(after_abi);
                    out.push(self.leaf(
                        ItemKind::ExternBlock,
                        String::new(),
                        start,
                        i,
                        end,
                        owner,
                        module_path,
                    ));
                    return end;
                }
                i = after_abi;
            } else {
                break;
            }
            if i >= to {
                return to;
            }
        }

        let kw_at = i;
        match self.text(i) {
            "mod" => {
                let name = self.ident_at(i + 1);
                if self.text(i + 2) == "{" {
                    let end = view.skip_balanced(i + 2);
                    module_path.push(name.clone());
                    let children = self.items_in(i + 3, end.saturating_sub(1), module_path, None);
                    module_path.pop();
                    let mut item =
                        self.leaf(ItemKind::Module, name, start, kw_at, end, None, module_path);
                    item.body = Some((i + 2, end));
                    item.children = children;
                    out.push(item);
                    end
                } else {
                    // `mod name;` — out-of-line, the walker lints its file.
                    let end = self.to_semicolon(i + 1, to);
                    out.push(self.leaf(
                        ItemKind::Module,
                        name,
                        start,
                        kw_at,
                        end,
                        None,
                        module_path,
                    ));
                    end
                }
            }
            "fn" => {
                let name = self.ident_at(i + 1);
                let (body, end) = self.body_or_semicolon(i + 2, to);
                let mut item = self.leaf(ItemKind::Fn, name, start, kw_at, end, owner, module_path);
                item.body = body;
                out.push(item);
                end
            }
            "impl" | "trait" => {
                let is_impl = self.text(i) == "impl";
                let (type_name, header_end) = if is_impl {
                    self.impl_type_name(i + 1, to)
                } else {
                    (self.ident_at(i + 1), self.find_body_open(i + 1, to))
                };
                if self.text(header_end) != "{" {
                    // `trait X = …;` alias or malformed: skip to `;`.
                    let end = self.to_semicolon(i + 1, to);
                    out.push(self.leaf(
                        if is_impl {
                            ItemKind::Impl
                        } else {
                            ItemKind::Trait
                        },
                        type_name,
                        start,
                        kw_at,
                        end,
                        None,
                        module_path,
                    ));
                    return end;
                }
                let end = view.skip_balanced(header_end);
                let children = self.items_in(
                    header_end + 1,
                    end.saturating_sub(1),
                    module_path,
                    Some(&type_name),
                );
                let mut item = self.leaf(
                    if is_impl {
                        ItemKind::Impl
                    } else {
                        ItemKind::Trait
                    },
                    type_name,
                    start,
                    kw_at,
                    end,
                    None,
                    module_path,
                );
                item.body = Some((header_end, end));
                item.children = children;
                out.push(item);
                end
            }
            "struct" | "enum" | "union" => {
                let name = self.ident_at(i + 1);
                let (body, end) = self.body_or_semicolon(i + 2, to);
                let mut item =
                    self.leaf(ItemKind::Struct, name, start, kw_at, end, None, module_path);
                item.body = body;
                out.push(item);
                end
            }
            "use" => {
                let end = self.to_semicolon(i + 1, to);
                self.flatten_use(i + 1, end.saturating_sub(1));
                out.push(self.leaf(
                    ItemKind::Use,
                    String::new(),
                    start,
                    kw_at,
                    end,
                    None,
                    module_path,
                ));
                end
            }
            "const" | "static" => {
                let name_at = if self.text(i + 1) == "mut" {
                    i + 2
                } else {
                    i + 1
                };
                let name = self.ident_at(name_at);
                let end = self.to_semicolon(i + 1, to);
                out.push(self.leaf(ItemKind::Const, name, start, kw_at, end, None, module_path));
                end
            }
            "type" => {
                let name = self.ident_at(i + 1);
                let end = self.to_semicolon(i + 1, to);
                out.push(self.leaf(
                    ItemKind::TypeAlias,
                    name,
                    start,
                    kw_at,
                    end,
                    None,
                    module_path,
                ));
                end
            }
            "macro_rules" | "macro" => {
                let name_at = if self.text(i + 1) == "!" {
                    i + 2
                } else {
                    i + 1
                };
                let name = self.ident_at(name_at);
                let open = self.find_body_open(name_at, to);
                let end = if self.text(open) == "{" {
                    view.skip_balanced(open)
                } else {
                    self.to_semicolon(i + 1, to)
                };
                out.push(self.leaf(
                    ItemKind::MacroDef,
                    name,
                    start,
                    kw_at,
                    end,
                    None,
                    module_path,
                ));
                end
            }
            ";" => i + 1,
            "{" => view.skip_balanced(i), // stray block: skip as a unit
            _ => i + 1,                   // unknown token: shed one and resync
        }
    }

    /// Builds a body-less item node spanning code tokens `[start, end)`.
    #[allow(clippy::too_many_arguments)]
    fn leaf(
        &self,
        kind: ItemKind,
        name: String,
        start: usize,
        kw_at: usize,
        end: usize,
        owner: Option<&str>,
        module_path: &[String],
    ) -> Item {
        let view = self.view;
        let (line, col) = view.ct(kw_at).map_or((0, 0), |t| (t.line, t.col));
        let span_start = view.ct(start).map_or(0, |t| t.start);
        let span_end = view
            .ct(end.saturating_sub(1))
            .map_or(view.src.len(), |t| t.end);
        Item {
            kind,
            name,
            owner: owner.map(str::to_string),
            module_path: module_path.to_vec(),
            line,
            col,
            sig_start: kw_at,
            body: None,
            span: (span_start, span_end),
            cfg_test: view.in_test_region(kw_at),
            children: Vec::new(),
        }
    }

    /// The identifier at code index `i`, or `""` when the token is not one.
    fn ident_at(&self, i: usize) -> String {
        match self.view.ckind(i) {
            Some(TokenKind::Ident) => self.text(i).to_string(),
            _ => String::new(),
        }
    }

    /// Index just past the `;` ending the current item (bracket groups
    /// skipped whole), or `to` when none is found.
    fn to_semicolon(&self, from: usize, to: usize) -> usize {
        let mut i = from;
        while i < to {
            match self.text(i) {
                "(" | "[" | "{" => i = self.view.skip_balanced(i),
                ";" => return i + 1,
                "}" => return i, // enclosing block closed first
                _ => i += 1,
            }
        }
        to
    }

    /// Scans a signature for its body: returns
    /// `(Some((open, one_past_close)), one_past_close)` for `{ … }` bodies,
    /// `(None, one_past_semicolon)` for `;`-terminated (trait methods).
    fn body_or_semicolon(&self, from: usize, to: usize) -> (Option<(usize, usize)>, usize) {
        let open = self.find_body_open(from, to);
        if self.text(open) == "{" {
            let end = self.view.skip_balanced(open);
            (Some((open, end)), end)
        } else {
            (None, self.to_semicolon(from, to))
        }
    }

    /// Code index of the first `{` at top level after `from` (paren/bracket
    /// groups skipped), stopping at `;` or a closing `}` of the enclosing
    /// scope. Returns the index of the stopping token either way.
    fn find_body_open(&self, from: usize, to: usize) -> usize {
        let mut i = from;
        while i < to {
            match self.text(i) {
                "(" | "[" => i = self.view.skip_balanced(i),
                "{" | ";" | "}" => return i,
                _ => i += 1,
            }
        }
        to
    }

    /// `impl` headers: skips leading generics, then takes the last path
    /// segment before generic arguments — of the type after `for` when the
    /// header has one (`impl Trait for Type`), of the first type otherwise.
    /// Returns the name and the index of the body `{`.
    fn impl_type_name(&self, from: usize, to: usize) -> (String, usize) {
        let body_open = self.find_body_open(from, to);
        let mut start = from;
        // Leading generic parameters `impl<…>`: angle-match, minding `>>`.
        if self.text(start) == "<" {
            let mut depth = 0i64;
            let mut j = start;
            while j < body_open {
                match self.text(j) {
                    "<" => depth += 1,
                    ">" => depth -= 1,
                    "<<" => depth += 2,
                    ">>" => depth -= 2,
                    _ => {}
                }
                j += 1;
                if depth <= 0 {
                    break;
                }
            }
            start = j;
        }
        // Prefer the segment after a top-level `for`.
        let mut scan = start;
        let mut name_from = start;
        while scan < body_open {
            match self.text(scan) {
                "(" | "[" => scan = self.view.skip_balanced(scan),
                "for" => {
                    name_from = scan + 1;
                    scan += 1;
                }
                _ => scan += 1,
            }
        }
        let mut name = String::new();
        let mut j = name_from;
        while j < body_open {
            match self.text(j) {
                "&" | "mut" | "dyn" | "::" => j += 1,
                "<" => break,
                _ => {
                    if self.view.ckind(j) == Some(TokenKind::Ident) {
                        name = self.text(j).to_string();
                        j += 1;
                        if self.text(j) != "::" {
                            break;
                        }
                    } else {
                        break;
                    }
                }
            }
        }
        (name, body_open)
    }

    /// Flattens one `use` declaration's path tokens (code indices
    /// `[from, to)`, the `;` excluded) into [`Import`]s.
    fn flatten_use(&mut self, from: usize, to: usize) {
        let line = self.view.ct(from).map_or(0, |t| t.line);
        let toks: Vec<String> = (from..to)
            .map(|i| self.text(i).to_string())
            .filter(|t| !t.is_empty())
            .collect();
        let mut prefix = Vec::new();
        self.flatten_use_slice(&toks, &mut prefix, line);
    }

    fn flatten_use_slice(&mut self, toks: &[String], prefix: &mut Vec<String>, line: u32) {
        let depth_added = prefix.len();
        let mut i = 0;
        while i < toks.len() {
            match toks[i].as_str() {
                "::" => i += 1,
                "{" => {
                    // Split the group body on top-level commas and recurse.
                    let mut depth = 1usize;
                    let mut part_start = i + 1;
                    let mut j = i + 1;
                    while j < toks.len() && depth > 0 {
                        match toks[j].as_str() {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    self.use_group_part(&toks[part_start..j], prefix, line);
                                }
                            }
                            "," if depth == 1 => {
                                self.use_group_part(&toks[part_start..j], prefix, line);
                                part_start = j + 1;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    prefix.truncate(depth_added);
                    return;
                }
                "as" => {
                    // Alias: the local leaf is the alias name.
                    let alias = toks.get(i + 1).cloned().unwrap_or_default();
                    self.push_import(alias, prefix, line);
                    prefix.truncate(depth_added);
                    return;
                }
                seg => {
                    prefix.push(seg.to_string());
                    i += 1;
                }
            }
        }
        // Plain path: the leaf is the last segment.
        if prefix.len() > depth_added {
            let leaf = prefix.last().cloned().unwrap_or_default();
            self.push_import(leaf, prefix, line);
        }
        prefix.truncate(depth_added);
    }

    fn use_group_part(&mut self, part: &[String], prefix: &mut Vec<String>, line: u32) {
        if part.is_empty() {
            return;
        }
        if part.len() == 1 && part[0] == "self" {
            // `use a::b::{self, c}` — `self` binds the prefix's last segment.
            let leaf = prefix.last().cloned().unwrap_or_default();
            self.push_import(leaf, prefix, line);
            return;
        }
        let before = prefix.len();
        self.flatten_use_slice(part, prefix, line);
        prefix.truncate(before);
    }

    fn push_import(&mut self, leaf: String, prefix: &[String], line: u32) {
        if leaf.is_empty() {
            return;
        }
        self.imports.push(Import {
            leaf,
            path: prefix.join("::"),
            line,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{classify, FileView};

    fn tree_of(src: &str) -> ItemTree {
        let ctx = classify("crates/core/src/a.rs");
        let view = FileView::new(&ctx, src);
        parse(&view)
    }

    #[test]
    fn finds_top_level_fns_with_bodies() {
        let t = tree_of("fn a() { b(); }\npub fn b() {}\nfn sig_only();\n");
        let fns = t.fns();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].name, "a");
        assert!(fns[0].body.is_some());
        assert_eq!(fns[1].name, "b");
        assert!(fns[2].body.is_none());
    }

    #[test]
    fn nests_modules_and_qualifies_names() {
        let t = tree_of("mod outer { mod inner { fn deep() {} } fn shallow() {} }\n");
        let fns = t.fns();
        let quals: Vec<String> = fns.iter().map(|f| f.qual_name()).collect();
        assert_eq!(quals, vec!["outer::inner::deep", "outer::shallow"]);
    }

    #[test]
    fn impl_methods_carry_their_type() {
        let t = tree_of(
            "struct Engine;\nimpl Engine {\n    pub fn query(&self) {}\n    fn probe(&self) {}\n}\nimpl Drop for Engine { fn drop(&mut self) {} }\n",
        );
        let fns = t.fns();
        assert_eq!(fns.len(), 3);
        assert_eq!(fns[0].qual_name(), "Engine::query");
        assert_eq!(fns[1].owner.as_deref(), Some("Engine"));
        // `impl Trait for Type` keys by the *type*.
        assert_eq!(fns[2].qual_name(), "Engine::drop");
    }

    #[test]
    fn generic_impl_headers_resolve_the_type() {
        let t =
            tree_of("impl<'a, T: Fn() -> u8> Iterator for Iter<'a, T> { fn next(&mut self) {} }\n");
        assert_eq!(t.fns()[0].qual_name(), "Iter::next");
    }

    #[test]
    fn trait_default_bodies_are_items() {
        let t = tree_of("trait Checker { fn check(&self) { helper(); }\n fn must(&self); }\n");
        let fns = t.fns();
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].qual_name(), "Checker::check");
        assert!(fns[0].body.is_some());
        assert!(fns[1].body.is_none());
    }

    #[test]
    fn use_groups_flatten_with_aliases() {
        let t = tree_of(
            "use std::collections::{HashMap, HashSet};\nuse std::sync::Arc as Shared;\nuse parking_lot::RwLock;\nuse a::b::{self, c::d};\n",
        );
        let leaves: Vec<(&str, &str)> = t
            .imports
            .iter()
            .map(|i| (i.leaf.as_str(), i.path.as_str()))
            .collect();
        assert!(leaves.contains(&("HashMap", "std::collections::HashMap")));
        assert!(leaves.contains(&("HashSet", "std::collections::HashSet")));
        assert!(leaves.contains(&("Shared", "std::sync::Arc")));
        assert!(leaves.contains(&("RwLock", "parking_lot::RwLock")));
        assert!(leaves.contains(&("b", "a::b")));
        assert!(leaves.contains(&("d", "a::b::c::d")));
        assert!(t.imports_from("HashMap", "std::collections"));
        assert!(!t.imports_from("RwLock", "std::sync"));
    }

    #[test]
    fn cfg_test_gating_is_inherited() {
        let t = tree_of(
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n",
        );
        let fns = t.fns();
        assert_eq!(fns.len(), 3);
        assert!(!fns[0].cfg_test);
        assert!(fns[1].cfg_test, "helper inherits the module gate");
        assert!(fns[2].cfg_test);
    }

    #[test]
    fn qualifier_soup_still_finds_the_fn() {
        let t = tree_of(
            "pub(crate) const fn a() {}\npub unsafe extern \"C\" fn b() {}\nasync fn c() {}\n",
        );
        let names: Vec<&str> = t.fns().iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn consts_statics_types_and_macros_are_skipped_whole() {
        let t = tree_of(
            "const X: u64 = { let a = 1; a + 1 };\nstatic mut Y: u8 = 0;\ntype Pair = (u8, u8);\nmacro_rules! m { ($x:expr) => { $x.unwrap() }; }\nfn after() {}\n",
        );
        let fns = t.fns();
        assert_eq!(fns.len(), 1, "macro body must not masquerade as items");
        assert_eq!(fns[0].name, "after");
        assert!(t
            .items
            .iter()
            .any(|i| i.kind == ItemKind::Const && i.name == "X"));
        assert!(t
            .items
            .iter()
            .any(|i| i.kind == ItemKind::MacroDef && i.name == "m"));
    }

    #[test]
    fn struct_with_braces_and_where_clause_fn() {
        let t = tree_of(
            "struct S<T> where T: Clone { field: T }\nfn generic<T>(x: T) -> Vec<T> where T: Clone { vec![x] }\n",
        );
        assert_eq!(t.fns().len(), 1);
        assert_eq!(t.fns()[0].name, "generic");
    }

    #[test]
    fn unbalanced_input_degrades_without_panic() {
        for src in [
            "fn broken( {",
            "impl {",
            "mod m {",
            "use ::{{{",
            "fn x() }",
            "pub pub pub",
        ] {
            let _ = tree_of(src); // must not panic
        }
    }

    #[test]
    fn spans_cover_attributes() {
        let src = "#[inline]\nfn a() {}\n";
        let t = tree_of(src);
        let item = &t.items[0];
        assert_eq!(item.span.0, 0, "span starts at the attribute");
        assert_eq!(&src[item.span.0..item.span.1], "#[inline]\nfn a() {}");
    }
}
