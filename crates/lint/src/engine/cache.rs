//! The incremental cache: content-hashed [`FileAnalysis`] records in a
//! version-stamped, line-based text file.
//!
//! Design constraints: no serde (the workspace vendors nothing), fully
//! deterministic output (files in sorted order, so the cache file is
//! byte-stable for an unchanged tree and diffs cleanly), and failure-proof
//! loading — any header mismatch or malformed line throws the whole cache
//! away and the run is merely cold.
//!
//! The header embeds the rule catalogue; adding, removing or renaming a
//! rule invalidates every cache in the wild, which is exactly right —
//! cached diagnostics name rules by `&'static str` identity restored via
//! [`static_rule_name`].

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::allow::Allow;
use crate::diag::{Diagnostic, Severity};
use crate::graph::{CallFact, CalleeKind, FnFact, LockFact, PanicFact};
use crate::rules::{all_rules, static_rule_name, workspace_rules};
use crate::source::classify;

use super::FileAnalysis;

/// Hit/miss counters from a cached workspace run.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Files whose analysis was reused from the cache.
    pub hits: usize,
    /// Files analyzed from scratch.
    pub misses: usize,
}

/// The cache format header: version + rule catalogue fingerprint.
fn header() -> String {
    let mut names: Vec<&str> = all_rules().iter().map(|r| r.name()).collect();
    names.extend(workspace_rules().iter().map(|r| r.name()));
    format!("itspq-lint-cache v2 [{}]", names.join(","))
}

/// Loads the cache at `path`; a missing, unreadable, stale-versioned or
/// malformed cache is an empty one.
#[must_use]
pub fn load(path: &Path) -> BTreeMap<String, FileAnalysis> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    parse_cache(&text).unwrap_or_default()
}

/// Writes all `analyses` to `path`, sorted by file path.
///
/// # Errors
/// Propagates I/O errors; callers treat a failed write as a cold next run.
pub fn store(path: &Path, analyses: &[FileAnalysis]) -> io::Result<()> {
    let mut sorted: Vec<&FileAnalysis> = analyses.iter().collect();
    sorted.sort_by(|a, b| a.ctx.path.cmp(&b.ctx.path));
    let mut out = String::new();
    out.push_str(&header());
    out.push('\n');
    for a in sorted {
        render_file(&mut out, a);
    }
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir)?;
        }
    }
    fs::write(path, out)
}

fn render_file(out: &mut String, a: &FileAnalysis) {
    use std::fmt::Write as _;
    let _ = writeln!(out, "F {}\t{:016x}", esc(&a.ctx.path), a.hash);
    for d in &a.raw {
        render_diag(out, 'R', d);
    }
    for d in &a.allow_errors {
        render_diag(out, 'E', d);
    }
    for al in &a.allows {
        let _ = writeln!(
            out,
            "A {}\t{}\t{}\t{}\t{}",
            esc(&al.rule),
            al.target_line,
            al.comment_line,
            al.col,
            esc(&al.justification)
        );
    }
    for f in &a.fns {
        let _ = writeln!(
            out,
            "N {}\t{}\t{}\t{}\t{}\t{}\t{}",
            esc(&f.simple),
            esc(&f.qual),
            f.owner.as_deref().map_or_else(|| "-".to_string(), esc),
            f.line,
            f.col,
            flag(f.is_test),
            flag(f.discipline)
        );
        for c in &f.calls {
            let kind = match c.kind {
                CalleeKind::Free => 'F',
                CalleeKind::Method => 'M',
                CalleeKind::SelfMethod => 'S',
            };
            let _ = writeln!(
                out,
                "C {kind}\t{}\t{}\t{}\t{}\t{}\t{}",
                esc(&c.ty),
                esc(&c.name),
                c.line,
                c.col,
                flag(c.allowed_panic),
                held(&c.held)
            );
        }
        for l in &f.locks {
            let _ = writeln!(
                out,
                "L {}\t{}\t{}\t{}",
                esc(&l.class),
                l.line,
                l.col,
                held(&l.held)
            );
        }
        for p in &f.panics {
            let _ = writeln!(out, "P {}\t{}\t{}", esc(&p.what), p.line, p.col);
        }
    }
}

fn render_diag(out: &mut String, tag: char, d: &Diagnostic) {
    use std::fmt::Write as _;
    let sev = match d.severity {
        Severity::Warning => 'w',
        Severity::Error => 'e',
    };
    let _ = writeln!(
        out,
        "{tag} {}\t{sev}\t{}\t{}\t{}",
        esc(d.rule),
        d.line,
        d.col,
        esc(&d.message)
    );
}

fn flag(b: bool) -> char {
    if b {
        't'
    } else {
        'f'
    }
}

fn held(classes: &[String]) -> String {
    if classes.is_empty() {
        "-".to_string()
    } else {
        classes.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
    }
}

fn parse_held(s: &str) -> Vec<String> {
    if s == "-" {
        Vec::new()
    } else {
        s.split(',').map(unesc).collect()
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
        .replace(',', "\\c")
}

fn unesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('c') => out.push(','),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

/// Parses a whole cache file; `None` on any irregularity.
fn parse_cache(text: &str) -> Option<BTreeMap<String, FileAnalysis>> {
    let mut lines = text.lines();
    if lines.next()? != header() {
        return None;
    }
    let mut out = BTreeMap::new();
    let mut cur: Option<FileAnalysis> = None;
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "F" => {
                if let Some(done) = cur.take() {
                    out.insert(done.ctx.path.clone(), done);
                }
                let (path, hash) = split2(rest)?;
                let path = unesc(path);
                cur = Some(FileAnalysis {
                    ctx: classify(&path),
                    hash: u64::from_str_radix(hash, 16).ok()?,
                    raw: Vec::new(),
                    allows: Vec::new(),
                    allow_errors: Vec::new(),
                    fns: Vec::new(),
                });
            }
            "R" | "E" => {
                let a = cur.as_mut()?;
                let d = parse_diag(rest, &a.ctx.path)?;
                if tag == "R" {
                    a.raw.push(d);
                } else {
                    a.allow_errors.push(d);
                }
            }
            "A" => {
                let a = cur.as_mut()?;
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 5 {
                    return None;
                }
                a.allows.push(Allow {
                    rule: unesc(f[0]),
                    target_line: f[1].parse().ok()?,
                    comment_line: f[2].parse().ok()?,
                    col: f[3].parse().ok()?,
                    justification: unesc(f[4]),
                });
            }
            "N" => {
                let a = cur.as_mut()?;
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 7 {
                    return None;
                }
                let (path, krate) = (a.ctx.path.clone(), a.ctx.crate_name.clone());
                a.fns.push(FnFact {
                    path,
                    crate_name: krate,
                    simple: unesc(f[0]),
                    qual: unesc(f[1]),
                    owner: (f[2] != "-").then(|| unesc(f[2])),
                    line: f[3].parse().ok()?,
                    col: f[4].parse().ok()?,
                    is_test: f[5] == "t",
                    discipline: f[6] == "t",
                    calls: Vec::new(),
                    locks: Vec::new(),
                    panics: Vec::new(),
                });
            }
            "C" => {
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 7 {
                    return None;
                }
                let kind = match f[0] {
                    "F" => CalleeKind::Free,
                    "M" => CalleeKind::Method,
                    "S" => CalleeKind::SelfMethod,
                    _ => return None,
                };
                cur.as_mut()?.fns.last_mut()?.calls.push(CallFact {
                    kind,
                    ty: unesc(f[1]),
                    name: unesc(f[2]),
                    line: f[3].parse().ok()?,
                    col: f[4].parse().ok()?,
                    allowed_panic: f[5] == "t",
                    held: parse_held(f[6]),
                });
            }
            "L" => {
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 4 {
                    return None;
                }
                cur.as_mut()?.fns.last_mut()?.locks.push(LockFact {
                    class: unesc(f[0]),
                    line: f[1].parse().ok()?,
                    col: f[2].parse().ok()?,
                    held: parse_held(f[3]),
                });
            }
            "P" => {
                let f: Vec<&str> = rest.split('\t').collect();
                if f.len() != 3 {
                    return None;
                }
                cur.as_mut()?.fns.last_mut()?.panics.push(PanicFact {
                    what: unesc(f[0]),
                    line: f[1].parse().ok()?,
                    col: f[2].parse().ok()?,
                });
            }
            _ => return None,
        }
    }
    if let Some(done) = cur.take() {
        out.insert(done.ctx.path.clone(), done);
    }
    Some(out)
}

fn parse_diag(rest: &str, path: &str) -> Option<Diagnostic> {
    let f: Vec<&str> = rest.split('\t').collect();
    if f.len() != 5 {
        return None;
    }
    Some(Diagnostic {
        rule: static_rule_name(&unesc(f[0]))?,
        severity: match f[1] {
            "w" => Severity::Warning,
            "e" => Severity::Error,
            _ => return None,
        },
        path: path.to_string(),
        line: f[2].parse().ok()?,
        col: f[3].parse().ok()?,
        message: unesc(f[4]),
    })
}

fn split2(s: &str) -> Option<(&str, &str)> {
    s.split_once('\t')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;

    fn sample_analyses() -> Vec<FileAnalysis> {
        let files = [
            (
                "crates/core/src/a.rs",
                "fn f(&self) {\n    let g = self.alpha.lock();\n    helper(g.k()); // itspq-lint: allow(panic-reachability, \"k is finite\")\n}\n",
            ),
            (
                "crates/lint/src/main.rs",
                "fn helper(k: u32) { k.to_string().parse::<u8>().unwrap(); }\nfn main() { panic!(\"tab\\there\"); }\n",
            ),
        ];
        files
            .iter()
            .map(|(p, s)| analyze_source(&classify(p), s))
            .collect()
    }

    #[test]
    fn round_trips_exactly() {
        let analyses = sample_analyses();
        let dir = std::env::temp_dir().join("itspq-lint-cache-test-rt");
        let path = dir.join("cache.txt");
        store(&path, &analyses).unwrap();
        let loaded = load(&path);
        assert_eq!(loaded.len(), analyses.len());
        for a in &analyses {
            let b = &loaded[&a.ctx.path];
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.raw, b.raw, "{}", a.ctx.path);
            assert_eq!(a.allow_errors, b.allow_errors);
            assert_eq!(a.allows, b.allows);
            assert_eq!(a.fns.len(), b.fns.len());
            for (x, y) in a.fns.iter().zip(&b.fns) {
                assert_eq!(x.qual, y.qual);
                assert_eq!(x.discipline, y.discipline);
                assert_eq!(x.calls.len(), y.calls.len());
                for (cx, cy) in x.calls.iter().zip(&y.calls) {
                    assert_eq!(cx.kind, cy.kind);
                    assert_eq!(cx.name, cy.name);
                    assert_eq!(cx.held, cy.held);
                    assert_eq!(cx.allowed_panic, cy.allowed_panic);
                }
                assert_eq!(
                    x.locks.iter().map(|l| &l.class).collect::<Vec<_>>(),
                    y.locks.iter().map(|l| &l.class).collect::<Vec<_>>()
                );
                assert_eq!(
                    x.panics.iter().map(|p| &p.what).collect::<Vec<_>>(),
                    y.panics.iter().map(|p| &p.what).collect::<Vec<_>>()
                );
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_header_or_garbage_degrades_to_empty() {
        assert!(parse_cache("itspq-lint-cache v1 [old]\nF x\t0\n").is_none());
        assert!(parse_cache(&format!("{}\nZ bogus line\n", header())).is_none());
        assert!(parse_cache(&format!("{}\nC F\ta\tb\t1\t1\tf\t-\n", header())).is_none());
        // An empty-but-valid cache is fine.
        assert_eq!(parse_cache(&format!("{}\n", header())).unwrap().len(), 0);
    }

    #[test]
    fn escaping_survives_tabs_newlines_commas_and_backslashes() {
        for s in ["a\tb", "a\nb", "a,b", "a\\b", "a\\tb", "", "plain"] {
            assert_eq!(unesc(&esc(s)), s, "{s:?}");
        }
    }
}
