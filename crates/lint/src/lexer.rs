//! A small hand-rolled Rust lexer.
//!
//! The rules in this crate are lexical, so the lexer's one job is to be
//! *right about what is code*: string literals (plain, raw, byte), char
//! literals, lifetimes and comments (line, nested block) must never leak
//! their contents into the token stream a rule matches against. Everything
//! else — identifiers, numbers, operators — is tokenised with positions so
//! diagnostics can point at `file:line:col`.
//!
//! The lexer never fails: any byte sequence produces a token stream (stray
//! or unterminated constructs degrade into `Punct`/literal-to-end-of-file
//! tokens), which the crate's proptests pin down.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`let`, `unwrap`, `r#try`, …).
    Ident,
    /// A lifetime such as `'a` (including `'static`, `'_`).
    Lifetime,
    /// An integer literal.
    Int,
    /// A floating-point literal (`1.0`, `1e-3`, `2f64`, `1.`).
    Float,
    /// A string, raw-string, byte-string or C-string literal.
    Str,
    /// A character or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A `//` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment, nesting handled.
    BlockComment,
    /// Punctuation / operator, possibly multi-character (`==`, `::`, `||`).
    Punct,
}

/// One token, with its byte span and 1-based position in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The kind of token.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based column (in characters) of the first byte.
    pub col: u32,
}

impl Token {
    /// The token's text.
    #[must_use]
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// Whether the token is a comment.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Multi-character operators, longest first so greedy matching is correct.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Tokenises `src`. Infallible: unterminated literals and comments extend to
/// the end of the file, and any unexpected byte becomes a one-byte `Punct`.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        self.skip_shebang();
        while self.pos < self.bytes.len() {
            let (line, col, start) = (self.line, self.col, self.pos);
            let kind = self.next_kind();
            if let Some(kind) = kind {
                self.out.push(Token {
                    kind,
                    start,
                    end: self.pos,
                    line,
                    col,
                });
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> u8 {
        *self.bytes.get(self.pos + ahead).unwrap_or(&0)
    }

    /// Consumes a leading `#!…` interpreter line as a [`TokenKind::LineComment`]
    /// token, per the language's shebang rule: only at byte 0, and only when
    /// not followed by `[` (so inner attributes like `#![forbid(unsafe_code)]`
    /// still tokenise as code).
    fn skip_shebang(&mut self) {
        if self.pos == 0 && self.peek(0) == b'#' && self.peek(1) == b'!' && self.peek(2) != b'[' {
            while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            self.out.push(Token {
                kind: TokenKind::LineComment,
                start: 0,
                end: self.pos,
                line: 1,
                col: 1,
            });
        }
    }

    /// Consumes one char, maintaining line/col. Multi-byte UTF-8 chars count
    /// as one column.
    fn bump(&mut self) {
        let b = self.peek(0);
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
            return;
        }
        let step = utf8_len(b);
        self.pos = (self.pos + step).min(self.bytes.len());
        self.col += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Lexes one token starting at `self.pos`; returns `None` for skipped
    /// whitespace. Always advances.
    fn next_kind(&mut self) -> Option<TokenKind> {
        let b = self.peek(0);

        if b.is_ascii_whitespace()
            || !b.is_ascii() && self.src[self.pos..].starts_with(char::is_whitespace)
        {
            self.bump();
            return None;
        }

        // Comments.
        if b == b'/' && self.peek(1) == b'/' {
            while self.pos < self.bytes.len() && self.peek(0) != b'\n' {
                self.bump();
            }
            return Some(TokenKind::LineComment);
        }
        if b == b'/' && self.peek(1) == b'*' {
            self.bump_n(2);
            let mut depth = 1u32;
            while self.pos < self.bytes.len() && depth > 0 {
                if self.peek(0) == b'/' && self.peek(1) == b'*' {
                    depth += 1;
                    self.bump_n(2);
                } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                    depth -= 1;
                    self.bump_n(2);
                } else {
                    self.bump();
                }
            }
            return Some(TokenKind::BlockComment);
        }

        // Raw strings / raw identifiers / byte and C strings.
        if b == b'r' || b == b'b' || b == b'c' {
            if let Some(kind) = self.try_prefixed_literal() {
                return Some(kind);
            }
        }

        // Identifiers and keywords.
        if b == b'_' || b.is_ascii_alphabetic() || !b.is_ascii() {
            while self.pos < self.bytes.len() {
                let c = self.peek(0);
                if c == b'_' || c.is_ascii_alphanumeric() || !c.is_ascii() {
                    self.bump();
                } else {
                    break;
                }
            }
            return Some(TokenKind::Ident);
        }

        // Numbers.
        if b.is_ascii_digit() {
            return Some(self.lex_number());
        }

        // Plain strings.
        if b == b'"' {
            self.bump();
            self.consume_quoted(b'"');
            return Some(TokenKind::Str);
        }

        // Char literal or lifetime.
        if b == b'\'' {
            return Some(self.lex_quote());
        }

        // Multi-char then single-char punctuation.
        for op in MULTI_PUNCT {
            if self.src[self.pos..].starts_with(op) {
                self.bump_n(op.chars().count());
                return Some(TokenKind::Punct);
            }
        }
        self.bump();
        Some(TokenKind::Punct)
    }

    /// `r"…"`, `r#"…"#`, `br#"…"#`, `b"…"`, `b'x'`, `c"…"`, `cr#"…"#`,
    /// `r#ident`.
    fn try_prefixed_literal(&mut self) -> Option<TokenKind> {
        let b = self.peek(0);
        let (raw_at, quote_at) = match (b, self.peek(1)) {
            (b'r', b'"' | b'#') => (0, 1),
            (b'b' | b'c', b'"') => (usize::MAX, 1),
            (b'b', b'\'') => {
                // Byte char literal b'x'.
                self.bump_n(2);
                self.consume_quoted(b'\'');
                return Some(TokenKind::Char);
            }
            (b'b' | b'c', b'r') if matches!(self.peek(2), b'"' | b'#') => (1, 2),
            _ => return None,
        };
        if raw_at != usize::MAX {
            // Count the hashes after the `r`.
            let mut hashes = 0usize;
            while self.peek(raw_at + 1 + hashes) == b'#' {
                hashes += 1;
            }
            if self.peek(raw_at + 1 + hashes) != b'"' {
                // `r#ident` (raw identifier) or stray `r#`.
                if hashes == 1 && is_ident_start(self.peek(raw_at + 2)) {
                    self.bump_n(raw_at + 2);
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    return Some(TokenKind::Ident);
                }
                return None;
            }
            // Consume up to and including the opening quote.
            self.bump_n(raw_at + 1 + hashes + 1);
            // Scan for `"` followed by `hashes` hashes.
            while self.pos < self.bytes.len() {
                if self.peek(0) == b'"' {
                    let mut ok = true;
                    for i in 0..hashes {
                        if self.peek(1 + i) != b'#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        self.bump_n(1 + hashes);
                        return Some(TokenKind::Str);
                    }
                }
                self.bump();
            }
            return Some(TokenKind::Str); // unterminated: to EOF
        }
        // b"…" / c"…"
        self.bump_n(quote_at + 1);
        self.consume_quoted(b'"');
        Some(TokenKind::Str)
    }

    /// Consumes until an unescaped `quote` (inclusive) or EOF.
    fn consume_quoted(&mut self, quote: u8) {
        while self.pos < self.bytes.len() {
            let c = self.peek(0);
            if c == b'\\' {
                self.bump_n(2);
                continue;
            }
            self.bump();
            if c == quote {
                return;
            }
        }
    }

    /// `'a` vs `'x'` vs `'\n'`.
    fn lex_quote(&mut self) -> TokenKind {
        // A lifetime is `'` + ident not followed by a closing `'`.
        if is_ident_start(self.peek(1)) {
            let mut i = 1;
            while is_ident_continue(self.peek(i)) {
                i += 1;
            }
            if self.peek(i) != b'\'' {
                self.bump_n(i);
                return TokenKind::Lifetime;
            }
        }
        self.bump(); // opening quote
        self.consume_quoted(b'\'');
        TokenKind::Char
    }

    fn lex_number(&mut self) -> TokenKind {
        let mut float = false;
        // Base-prefixed integers consume their digit set and cannot be floats.
        if self.peek(0) == b'0' && matches!(self.peek(1), b'x' | b'b' | b'o') {
            self.bump_n(2);
            while matches!(self.peek(0), b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F' | b'_') {
                self.bump();
            }
            while is_ident_continue(self.peek(0)) {
                self.bump(); // suffix like u32
            }
            return TokenKind::Int;
        }
        while matches!(self.peek(0), b'0'..=b'9' | b'_') {
            self.bump();
        }
        // Fractional part: a `.` followed by a digit, or by nothing
        // number-like (`1.` but not `1..2` or `1.max()`).
        if self.peek(0) == b'.' {
            let after = self.peek(1);
            if after.is_ascii_digit() {
                float = true;
                self.bump();
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            } else if after != b'.' && !is_ident_start(after) {
                float = true;
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(0), b'e' | b'E') {
            let (s1, s2) = (self.peek(1), self.peek(2));
            if s1.is_ascii_digit() || (matches!(s1, b'+' | b'-') && s2.is_ascii_digit()) {
                float = true;
                self.bump_n(2);
                while matches!(self.peek(0), b'0'..=b'9' | b'_') {
                    self.bump();
                }
            }
        }
        // Suffix (`f64`, `u32`, …).
        let suffix_start = self.pos;
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        let suffix = self.src.get(suffix_start..self.pos).unwrap_or("");
        if suffix.starts_with("f32") || suffix.starts_with("f64") {
            float = true;
        }
        if float {
            TokenKind::Float
        } else {
            TokenKind::Int
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn is_ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic()
}

fn is_ident_continue(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_calls() {
        let got = kinds("x.unwrap()");
        assert_eq!(got[0], (TokenKind::Ident, "x".into()));
        assert_eq!(got[1], (TokenKind::Punct, ".".into()));
        assert_eq!(got[2], (TokenKind::Ident, "unwrap".into()));
        assert_eq!(got[3], (TokenKind::Punct, "(".into()));
        assert_eq!(got[4], (TokenKind::Punct, ")".into()));
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let got = kinds(r#"let s = "a.unwrap() == 1.0";"#);
        assert!(got
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || (t != "unwrap")));
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"r#"contains "quotes" and unwrap()"# + 1"###;
        let got = kinds(src);
        assert_eq!(got[0].0, TokenKind::Str);
        assert_eq!(got[1], (TokenKind::Punct, "+".into()));
        assert_eq!(got[2].0, TokenKind::Int);
    }

    #[test]
    fn nested_block_comments() {
        let got = kinds("/* outer /* inner */ still comment */ x");
        assert_eq!(got[0].0, TokenKind::BlockComment);
        assert_eq!(got[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = kinds("&'a str; 'x'; '\\n'; b'q'");
        assert_eq!(got[1].0, TokenKind::Lifetime);
        assert!(got.iter().filter(|(k, _)| *k == TokenKind::Char).count() == 3);
    }

    #[test]
    fn float_vs_int_vs_range() {
        assert_eq!(kinds("1.0")[0].0, TokenKind::Float);
        assert_eq!(kinds("1e-3")[0].0, TokenKind::Float);
        assert_eq!(kinds("2f64")[0].0, TokenKind::Float);
        assert_eq!(kinds("7")[0].0, TokenKind::Int);
        assert_eq!(kinds("0..10")[0].0, TokenKind::Int);
        assert_eq!(kinds("0..10")[1], (TokenKind::Punct, "..".into()));
        assert_eq!(kinds("x.0")[2].0, TokenKind::Int);
    }

    #[test]
    fn multichar_operators_stay_whole() {
        let got = kinds("a == b != c :: d || e");
        let puncts: Vec<&str> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(puncts, vec!["==", "!=", "::", "||"]);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_identifier() {
        let got = kinds("r#try + r#\"raw\"#");
        assert_eq!(got[0], (TokenKind::Ident, "r#try".into()));
        assert_eq!(got[2].0, TokenKind::Str);
    }

    #[test]
    fn shebang_line_is_a_comment_not_code() {
        let got = kinds("#!/usr/bin/env run-cargo-script\nfn main() { x.unwrap(); }\n");
        assert_eq!(got[0].0, TokenKind::LineComment);
        assert!(got[0].1.starts_with("#!/usr/bin/env"));
        // The interpreter path never leaks as Punct/Ident soup.
        assert_eq!(got[1], (TokenKind::Ident, "fn".into()));
    }

    #[test]
    fn inner_attribute_is_not_a_shebang() {
        let got = kinds("#![forbid(unsafe_code)]\nfn f() {}\n");
        assert_eq!(got[0], (TokenKind::Punct, "#".into()));
        assert_eq!(got[1], (TokenKind::Punct, "!".into()));
        assert!(got
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "forbid"));
    }

    #[test]
    fn shebang_only_counts_at_byte_zero() {
        let got = kinds("fn f() {}\n#!/not/a/shebang\n");
        // Past byte 0 the same bytes tokenise as punctuation and idents.
        assert!(got.iter().any(|(k, t)| *k == TokenKind::Punct && t == "#"));
    }

    #[test]
    fn c_string_contents_do_not_leak() {
        let got = kinds(r#"let s = c"a.unwrap() == 1.0";"#);
        assert!(got.iter().all(|(_, t)| t != "unwrap"));
        assert_eq!(got.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn c_raw_string_with_hashes_is_one_token() {
        let src = r###"cr#"has "quotes" and panic!()"# + 2"###;
        let got = kinds(src);
        assert_eq!(got[0].0, TokenKind::Str);
        assert_eq!(got[1], (TokenKind::Punct, "+".into()));
        assert_eq!(got[2].0, TokenKind::Int);
    }

    #[test]
    fn unterminated_constructs_reach_eof_without_panic() {
        for src in ["\"never closed", "/* open", "r#\"open", "'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().map(|t| t.end), Some(src.len()));
        }
    }
}
