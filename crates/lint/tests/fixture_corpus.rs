//! Integration tests driving [`itspq_lint::lint_source`] over the fixture
//! corpus in `tests/fixtures/`.
//!
//! The workspace walker deliberately skips directories named `fixtures`, so
//! these files never pollute a real `itspq-lint` run — each test feeds one to
//! the engine with an explicit [`FileCtx`] instead.

use itspq_lint::{classify, lint_files, lint_source, FileOutcome, Report, Severity, ALLOW_RULE};

/// Lints fixture `src` as if it lived at `path` inside the workspace.
fn lint_as(path: &str, src: &str) -> FileOutcome {
    lint_source(&classify(path), src)
}

/// Lints several fixtures as one workspace, so the cross-file rules
/// (`lock-order`, `panic-reachability`) see all of them at once.
fn lint_many(files: &[(&str, &str)]) -> Report {
    let files: Vec<_> = files
        .iter()
        .map(|(path, src)| (classify(path), (*src).to_string()))
        .collect();
    lint_files(&files)
}

/// Rule names of the unsuppressed findings, in source order.
fn rules(outcome: &FileOutcome) -> Vec<&str> {
    outcome.diagnostics.iter().map(|d| d.rule).collect()
}

#[test]
fn bad_panic_flags_every_family_member() {
    let out = lint_as(
        "crates/core/src/bad_panic.rs",
        include_str!("fixtures/bad_panic.rs"),
    );
    assert_eq!(rules(&out), vec!["no-panic-in-lib"; 6]);
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented! in order.
    let lines: Vec<u32> = out.diagnostics.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![4, 8, 13, 15, 19, 23]);
    assert!(out
        .diagnostics
        .iter()
        .all(|d| d.severity == Severity::Error));
}

#[test]
fn bad_panic_is_exempt_outside_lib_discipline() {
    let src = include_str!("fixtures/bad_panic.rs");
    // Integration tests, benches, examples and non-disciplined crates may
    // panic freely.
    for path in [
        "crates/core/tests/bad_panic.rs",
        "crates/core/benches/bad_panic.rs",
        "crates/core/examples/bad_panic.rs",
        "crates/bench/src/bad_panic.rs",
        "crates/vendor/serde/src/bad_panic.rs",
    ] {
        let out = lint_as(path, src);
        assert!(
            out.diagnostics.is_empty(),
            "{path} should be exempt, got {:?}",
            rules(&out)
        );
    }
}

#[test]
fn bad_float_flags_partial_cmp_chains_and_literal_equality() {
    let out = lint_as(
        "crates/indoor-geom/src/bad_float.rs",
        include_str!("fixtures/bad_float.rs"),
    );
    // partial_cmp().unwrap() and partial_cmp().expect() each produce one
    // float-total-order finding (the chain) and one no-panic-in-lib finding
    // (the unwrap itself); the two literal comparisons one each.
    let float_findings = out
        .diagnostics
        .iter()
        .filter(|d| d.rule == "float-total-order")
        .count();
    assert_eq!(float_findings, 4);
    assert!(rules(&out).contains(&"no-panic-in-lib"));
}

#[test]
fn bad_lock_flags_guard_across_build() {
    let out = lint_as(
        "crates/core/src/bad_lock.rs",
        include_str!("fixtures/bad_lock.rs"),
    );
    assert_eq!(rules(&out), vec!["lock-scope"]);
    assert_eq!(out.diagnostics[0].line, 4);
}

#[test]
fn bad_thread_flags_detached_spawn_except_in_bench() {
    let src = include_str!("fixtures/bad_thread.rs");
    let out = lint_as("crates/indoor-space/src/bad_thread.rs", src);
    assert_eq!(rules(&out), vec!["scoped-threads-only"]);
    // The bench crate keeps its harness freedom.
    assert!(lint_as("crates/bench/src/bad_thread.rs", src)
        .diagnostics
        .is_empty());
}

#[test]
fn bad_clock_flags_core_only() {
    let src = include_str!("fixtures/bad_clock.rs");
    let out = lint_as("crates/core/src/bad_clock.rs", src);
    let clock_findings = out
        .diagnostics
        .iter()
        .filter(|d| d.rule == "no-wall-clock-in-core")
        .count();
    // `Instant` appears twice (import + use), `SystemTime` once.
    assert_eq!(clock_findings, 3);
    // Outside crates/core the same source is fine (bench measures time).
    assert!(lint_as("crates/bench/src/bad_clock.rs", src)
        .diagnostics
        .is_empty());
}

#[test]
fn bad_allows_are_themselves_findings() {
    let out = lint_as(
        "crates/core/src/bad_allows.rs",
        include_str!("fixtures/bad_allows.rs"),
    );
    let allow_errors = out
        .diagnostics
        .iter()
        .filter(|d| d.rule == ALLOW_RULE)
        .count();
    // Unjustified, unknown-rule and stale: three allow-discipline errors.
    assert_eq!(allow_errors, 3);
    // The unwraps shielded by the malformed/unknown allows still surface.
    assert_eq!(
        out.diagnostics
            .iter()
            .filter(|d| d.rule == "no-panic-in-lib")
            .count(),
        2
    );
    assert_eq!(out.suppressed, 0);
}

#[test]
fn ok_suppressed_is_clean_and_counts_the_allow() {
    let out = lint_as(
        "crates/core/src/ok_suppressed.rs",
        include_str!("fixtures/ok_suppressed.rs"),
    );
    assert!(out.diagnostics.is_empty(), "got {:?}", rules(&out));
    assert_eq!(out.suppressed, 1);
    assert_eq!(out.allows_used, 1);
}

#[test]
fn ok_clean_has_no_findings() {
    let out = lint_as(
        "crates/core/src/ok_clean.rs",
        include_str!("fixtures/ok_clean.rs"),
    );
    assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
    assert_eq!(out.suppressed, 0);
}

#[test]
fn bad_lock_cycle_across_two_files_is_one_finding() {
    let out = lint_many(&[
        (
            "crates/core/src/bad_lock_cycle_a.rs",
            include_str!("fixtures/bad_lock_cycle_a.rs"),
        ),
        (
            "crates/core/src/bad_lock_cycle_b.rs",
            include_str!("fixtures/bad_lock_cycle_b.rs"),
        ),
    ]);
    // Exactly one diagnostic: the cycle, reported once with both classes
    // and the functions that thread it.
    let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec!["lock-order"], "{:?}", out.diagnostics);
    let msg = &out.diagnostics[0].message;
    assert!(msg.contains("core::PAIR.alpha"), "{msg}");
    assert!(msg.contains("core::PAIR.beta"), "{msg}");
    assert!(msg.contains("cycle"), "{msg}");
}

#[test]
fn ok_lock_cycle_twins_agree_on_an_order_and_are_clean() {
    let out = lint_many(&[
        (
            "crates/core/src/ok_lock_cycle_a.rs",
            include_str!("fixtures/ok_lock_cycle_a.rs"),
        ),
        (
            "crates/core/src/ok_lock_cycle_b.rs",
            include_str!("fixtures/ok_lock_cycle_b.rs"),
        ),
    ]);
    assert!(out.is_clean(), "{:?}", out.diagnostics);
}

#[test]
fn bad_nondet_iter_flags_both_enumerations_on_the_answer_path() {
    // The fixture is linted as `server.rs`, a parity-critical module.
    let out = lint_as(
        "crates/core/src/server.rs",
        include_str!("fixtures/bad_nondet_iter.rs"),
    );
    assert_eq!(
        rules(&out),
        vec!["nondet-iteration"; 2],
        "{:?}",
        out.diagnostics
    );
    // `.values()` in `summary`, `.keys()` in `replay_plans`; the keyed
    // `.get(..)` lookup in `hits` must NOT be flagged.
    assert!(out.diagnostics[0].message.contains(".values()"));
    assert!(out.diagnostics[1].message.contains(".keys()"));
}

#[test]
fn ok_nondet_iter_btreemap_twin_is_clean() {
    let out = lint_as(
        "crates/core/src/server.rs",
        include_str!("fixtures/ok_nondet_iter.rs"),
    );
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
}

#[test]
fn bad_transitive_panic_three_deep_is_reported_at_the_lib_call_site() {
    let out = lint_many(&[
        (
            "crates/core/src/lib.rs",
            include_str!("fixtures/transitive_panic_entry.rs"),
        ),
        (
            "crates/core/src/main.rs",
            include_str!("fixtures/bad_transitive_panic.rs"),
        ),
    ]);
    let rules: Vec<&str> = out.diagnostics.iter().map(|d| d.rule).collect();
    assert_eq!(rules, vec!["panic-reachability"], "{:?}", out.diagnostics);
    let d = &out.diagnostics[0];
    // Reported where disciplined code crosses into the panicky chain —
    // the library file — with the full three-deep witness.
    assert_eq!(d.path, "crates/core/src/lib.rs");
    assert!(
        d.message
            .contains("parse_batch_env -> parse_level_one -> parse_level_two"),
        "{}",
        d.message
    );
    assert!(d.message.contains("unwrap"), "{}", d.message);
}

#[test]
fn ok_transitive_panic_total_chain_is_clean() {
    let out = lint_many(&[
        (
            "crates/core/src/lib.rs",
            include_str!("fixtures/transitive_panic_entry.rs"),
        ),
        (
            "crates/core/src/main.rs",
            include_str!("fixtures/ok_transitive_panic.rs"),
        ),
    ]);
    assert!(out.is_clean(), "{:?}", out.diagnostics);
}

#[test]
fn bad_float_det_flags_fma_partial_cmp_and_unordered_sum() {
    // The fixture is linted as `framework.rs`, a parity-critical module.
    let out = lint_as(
        "crates/core/src/framework.rs",
        include_str!("fixtures/bad_float_det.rs"),
    );
    assert_eq!(
        rules(&out),
        vec!["float-determinism"; 3],
        "{:?}",
        out.diagnostics
    );
    assert!(out.diagnostics[0].message.contains("mul_add"));
    assert!(out.diagnostics[1].message.contains("sort_by"));
    assert!(out.diagnostics[2].message.contains("sum"));
}

#[test]
fn ok_float_det_twin_is_clean_and_rule_is_scoped_to_parity_modules() {
    let fixed = include_str!("fixtures/ok_float_det.rs");
    let out = lint_as("crates/core/src/framework.rs", fixed);
    assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
    // The *bad* twin outside the parity-critical set is also out of scope:
    // float-determinism guards the answer path, not every float in the repo.
    let elsewhere = lint_as(
        "crates/indoor-geom/src/bad_float_det.rs",
        include_str!("fixtures/bad_float_det.rs"),
    );
    assert!(
        !elsewhere
            .diagnostics
            .iter()
            .any(|d| d.rule == "float-determinism"),
        "{:?}",
        elsewhere.diagnostics
    );
}

#[test]
fn tricky_lexer_text_in_strings_comments_and_tests_is_invisible() {
    let out = lint_as(
        "crates/core/src/tricky_lexer.rs",
        include_str!("fixtures/tricky_lexer.rs"),
    );
    assert!(out.diagnostics.is_empty(), "got {:?}", out.diagnostics);
}
