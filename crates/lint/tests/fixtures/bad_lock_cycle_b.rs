//! Fixture: the other half of the two-file lock-order cycle. This file
//! acquires `PAIR.beta` and, while holding it, calls `touch_alpha` back in
//! `bad_lock_cycle_a.rs` — the `beta → alpha` edge that closes the ring.

/// Absorbs alpha-owned state: called from the sibling file while `alpha`
/// is held, so the `beta` acquisition here is the forward edge's far end.
pub fn merge_into_beta(src: &AlphaState) {
    let h = PAIR.beta.lock();
    h.absorb(src);
}

/// The back edge: takes `beta`, then re-enters the sibling file's
/// `touch_alpha` (which takes `alpha`) while still holding it.
pub fn flush_beta_then_alpha() {
    let h = PAIR.beta.lock();
    touch_alpha();
    h.seal();
}
