//! Fixture: NaN-unsafe float comparisons.

pub fn sort_desc(xs: &mut [f64]) {
    xs.sort_by(|a, b| b.partial_cmp(a).unwrap());
}

pub fn sort_asc(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
}

pub fn is_unit(x: f64) -> bool {
    x == 1.0
}

pub fn is_not_half(y: f64) -> bool {
    0.5 != y
}
