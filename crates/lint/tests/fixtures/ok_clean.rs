//! Fixture: the blessed idioms — typed errors, total order, temporary
//! guards, scoped threads, query-time-only temporal logic.

pub fn first(v: &[i32]) -> Option<i32> {
    v.first().copied()
}

pub fn sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn cached(&self, key: u32) -> Option<View> {
    self.cache.read().get(&key).cloned()
}

pub fn fan_out(graph: &Graph, queries: &[Query]) -> Vec<Answer> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(8)
            .map(|chunk| scope.spawn(move || chunk.iter().map(|q| graph.answer(q)).collect()))
            .collect();
        handles.into_iter().flat_map(|h| h.join()).flatten().collect()
    })
}
