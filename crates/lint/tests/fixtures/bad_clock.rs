//! Fixture: wall-clock reads in core algorithm code.

use std::time::Instant;

pub fn timed_query(&self) -> f64 {
    let t0 = Instant::now();
    let _ = std::time::SystemTime::now();
    t0.elapsed().as_secs_f64()
}
