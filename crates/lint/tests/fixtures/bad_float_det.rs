//! Fixture: the three float idioms that break bit-reproducibility, linted
//! as if this were `crates/core/src/framework.rs` (parity-critical). Each
//! one produces answers that depend on codegen, NaN handling or iteration
//! order rather than on the query.

/// BAD: `mul_add` rounds once only where the target emits FMA, so the
/// same door weights produce different bytes on different machines.
pub fn door_cost(dist: f64, velocity: f64, penalty: f64) -> f64 {
    dist.mul_add(velocity, penalty)
}

/// BAD: a `partial_cmp` comparator is not total (NaN) and ties break by
/// input order; plus BAD: an unordered `f64` sum re-associates rounding.
pub fn rank_candidates(cands: &mut Vec<Candidate>) -> f64 {
    cands.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap_or(Ordering::Equal));
    cands.iter().map(|c| c.cost).sum::<f64>()
}
