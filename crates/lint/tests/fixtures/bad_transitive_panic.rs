//! Fixture: a binary-side helper chain whose third level `unwrap`s. Panic
//! sites are legal *locally* in a binary — but `transitive_panic_entry.rs`
//! reaches this chain from disciplined library code, three calls deep, so
//! `panic-reachability` must report the library call site with the full
//! witness `parse_batch_env -> parse_level_one -> parse_level_two`.

fn parse_batch_env() -> usize {
    parse_level_one()
}

fn parse_level_one() -> usize {
    parse_level_two()
}

fn parse_level_two() -> usize {
    std::env::var("ITSPQ_BATCH").unwrap().parse().unwrap()
}

fn main() {
    run_server(batch_len());
}
