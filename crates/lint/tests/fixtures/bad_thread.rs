//! Fixture: a detached thread outside the bench crate.

pub fn background(work: impl FnOnce() + Send + 'static) {
    std::thread::spawn(work);
}
