//! Fixture: one half of a two-file lock-order cycle. This file acquires
//! `PAIR.alpha` and, while holding it, calls into `bad_lock_cycle_b.rs`,
//! which acquires `PAIR.beta` — the `alpha → beta` edge. The back edge
//! lives in the other file; neither file is suspicious alone.

/// Flushes alpha-owned state into beta: takes `alpha`, then crosses into
/// `merge_into_beta` (which takes `beta`) while still holding it.
pub fn flush_alpha_then_beta() {
    let g = PAIR.alpha.lock();
    merge_into_beta(&g);
}

/// Takes the alpha lock alone — the target of the cycle's back edge from
/// `flush_beta_then_alpha` in the sibling file.
pub fn touch_alpha() {
    let g = PAIR.alpha.lock();
    g.bump();
}
