//! Fixture: panic-family *text* that must never be flagged, because it sits
//! in strings, comments, raw strings or `#[cfg(test)]` regions.
//!
//! A doc sentence mentioning .unwrap() is fine too.

pub fn strings_and_comments() -> String {
    // a comment saying x.unwrap() is not a finding
    /* nor a block comment with y.expect("...") or panic!("..")
       spanning /* nested */ comments */
    let s = "call .unwrap() and .expect(\"msg\") and panic!(\"boom\")";
    let r = r#"raw with "quotes" and .unwrap() and Instant::now()"#;
    let odd = r##"outer ##: "# still inside .expect("here") "##;
    format!("{s}{r}{odd}")
}

pub fn char_literals() -> (char, char, char) {
    ('"', '\\', '\'')
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1.0_f64];
        assert_eq!(v.first().unwrap().partial_cmp(&1.0).unwrap(), std::cmp::Ordering::Equal);
        // Wall-clock reads are fine in tests (scoped-threads-only is the one
        // rule that also covers tests — detached threads are bad everywhere).
        let _ = std::time::Instant::now();
    }
}
