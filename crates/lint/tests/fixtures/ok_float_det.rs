//! Fixture: the fixed twin of `bad_float_det.rs`. Two explicit roundings,
//! a total comparator, and a left-to-right fold over an already-ordered
//! slice — every quantity is a pure function of the inputs.

/// Two roundings, same on every target: no FMA dependence.
pub fn door_cost(dist: f64, velocity: f64, penalty: f64) -> f64 {
    dist * velocity + penalty
}

/// `total_cmp` is total over every bit pattern, and the fold reduces the
/// sorted slice left to right — one deterministic association.
pub fn rank_candidates(cands: &mut Vec<Candidate>) -> f64 {
    cands.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    cands.iter().fold(0.0, |acc, c| acc + c.cost)
}
