//! Fixture: the fixed twin of `bad_lock_cycle_a.rs`. Both files agree on
//! the global acquisition order `alpha` before `beta`, so the lock graph
//! has the single edge `alpha → beta` and no cycle.

/// Flushes alpha-owned state into beta, in the blessed order.
pub fn flush_alpha_then_beta() {
    let g = PAIR.alpha.lock();
    merge_into_beta(&g);
}

/// Takes the alpha lock alone; nobody calls this while holding `beta`.
pub fn touch_alpha() {
    let g = PAIR.alpha.lock();
    g.bump();
}
