//! Fixture: the fixed twin of `bad_transitive_panic.rs`. The deepest level
//! now folds its failure modes into a default instead of unwrapping, so
//! the whole chain is total and the library entry point inherits nothing.

fn parse_batch_env() -> usize {
    parse_level_one()
}

fn parse_level_one() -> usize {
    parse_level_two()
}

fn parse_level_two() -> usize {
    std::env::var("ITSPQ_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

fn main() {
    run_server(batch_len());
}
