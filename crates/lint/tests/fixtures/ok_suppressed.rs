//! Fixture: a finding silenced by a well-formed, justified allow.

pub fn literal(v: &[i32; 3]) -> i32 {
    // itspq-lint: allow(no-panic-in-lib, "a [i32; 3] always has a first element")
    *v.first().unwrap()
}
