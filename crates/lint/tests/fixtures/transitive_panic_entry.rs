//! Fixture: the disciplined library entry point shared by the transitive
//! panic twins. This file is clean on its own — `batch_len` has no direct
//! panic site — so whether `panic-reachability` fires depends entirely on
//! which binary twin (`bad_transitive_panic.rs` / `ok_transitive_panic.rs`)
//! it is linted together with.

/// Number of queries a worker should pull per batch. Called from the
/// server's hot loop, so it must be total: a panic here poisons a worker.
pub fn batch_len() -> usize {
    parse_batch_env()
}
