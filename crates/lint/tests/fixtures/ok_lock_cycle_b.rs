//! Fixture: the fixed twin of `bad_lock_cycle_b.rs`. The former back edge
//! is gone — refreshing both sides now acquires `alpha` first and only
//! then crosses into the beta half, matching the sibling file's order.

/// Absorbs alpha-owned state under the beta lock (the far end of the one
/// remaining edge `alpha → beta`).
pub fn merge_into_beta(src: &AlphaState) {
    let h = PAIR.beta.lock();
    h.absorb(src);
}

/// Refreshes both sides in the global order: `alpha` strictly before
/// `beta`, via the same helper the sibling file uses.
pub fn refresh_both() {
    let g = PAIR.alpha.lock();
    merge_into_beta(&g);
}
