//! Fixture: every shape of the panic family in library code.

pub fn take_first(v: &[i32]) -> i32 {
    *v.first().unwrap()
}

pub fn take_second(v: &[i32]) -> i32 {
    *v.get(1).expect("fixture wants a second element")
}

pub fn explode(flag: bool) {
    if flag {
        panic!("fixture explosion");
    }
    unreachable!();
}

pub fn later() -> i32 {
    todo!()
}

pub fn never() -> i32 {
    unimplemented!()
}
