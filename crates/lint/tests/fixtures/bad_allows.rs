//! Fixture: every way a suppression itself can be wrong.

pub fn unjustified(v: &[i32]) -> i32 {
    // itspq-lint: allow(no-panic-in-lib)
    *v.first().unwrap()
}

pub fn unknown_rule(v: &[i32]) -> i32 {
    // itspq-lint: allow(no-such-rule, "this rule does not exist")
    *v.first().unwrap()
}

pub fn stale() -> i32 {
    // itspq-lint: allow(no-panic-in-lib, "nothing on the next line panics")
    41 + 1
}
