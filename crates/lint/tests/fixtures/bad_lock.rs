//! Fixture: a let-bound lock guard held across a cache build.

pub fn rebuild(&self, key: u32) -> View {
    let guard = self.cache.write();
    let view = self.build_view(key);
    guard.insert(key, view.clone());
    view
}
