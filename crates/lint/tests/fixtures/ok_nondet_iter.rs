//! Fixture: the fixed twin of `bad_nondet_iter.rs`. The container is a
//! `BTreeMap`, so every enumeration below walks ascending key order —
//! identical on every run and every worker count.

/// Per-plan hit counters, keyed by an opaque plan id.
pub struct HitStats {
    hits_of: BTreeMap<u64, u64>,
}

impl HitStats {
    /// Keyed lookup, unchanged from the bad twin.
    pub fn hits(&self, plan: u64) -> u64 {
        self.hits_of.get(&plan).copied().unwrap_or(0)
    }

    /// `.values()` on a `BTreeMap` is ascending-key order: deterministic.
    pub fn summary(&self) -> Vec<u64> {
        self.hits_of.values().copied().collect()
    }

    /// `for` over `.keys()` of a `BTreeMap`: same, deterministic.
    pub fn replay_plans(&self) {
        for plan in self.hits_of.keys() {
            observe(plan);
        }
    }
}
