//! Fixture: hash-order iteration on the answer path. Linted as if it were
//! `crates/core/src/server.rs` (a parity-critical module), where both
//! enumerations below feed values a batch answer could observe — their
//! order is `RandomState`-dependent and varies run to run.

/// Per-plan hit counters, keyed by an opaque plan id.
pub struct HitStats {
    hits_of: HashMap<u64, u64>,
}

impl HitStats {
    /// Keyed lookup is fine: no enumeration, no order.
    pub fn hits(&self, plan: u64) -> u64 {
        self.hits_of.get(&plan).copied().unwrap_or(0)
    }

    /// BAD: `.values()` enumerates in hash order, and the collected `Vec`
    /// leaks that order straight into whatever consumes the summary.
    pub fn summary(&self) -> Vec<u64> {
        self.hits_of.values().copied().collect()
    }

    /// BAD: `.keys()` in a `for` header — same unspecified order, observed
    /// one plan at a time.
    pub fn replay_plans(&self) {
        for plan in self.hits_of.keys() {
            observe(plan);
        }
    }
}
