//! The linter's own acceptance test: the workspace it ships in must pass it.
//!
//! This is the same invariant CI enforces with `itspq-lint --deny`, kept as
//! a plain test so `cargo test` alone catches a regression (a new unwrap in
//! library code, a stale allow) without the extra CI step.

use std::path::Path;

use itspq_lint::lint_workspace;

#[test]
fn the_workspace_passes_its_own_linter() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join("..");
    let report = lint_workspace(&root).expect("workspace root is readable");
    assert!(
        report.files > 50,
        "walker found only {} files — wrong root?",
        report.files
    );
    let rendered: Vec<String> = report.diagnostics.iter().map(ToString::to_string).collect();
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        rendered.join("\n")
    );
    // The suppression inventory is in active use (stale allows are errors,
    // so every counted allow provably silences something).
    assert!(report.allows_used > 0);
    assert!(report.suppressed >= report.allows_used);
}
