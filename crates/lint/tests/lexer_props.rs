//! Property tests for the lexer, with a hand-rolled deterministic generator
//! (the workspace vendors its dependencies, so no `proptest`).
//!
//! Properties:
//!
//! 1. `lex` is total — no input panics it, including truncated strings,
//!    unterminated comments and stray non-UTF-8-boundary-safe punctuation;
//! 2. token spans are in-bounds, non-empty, non-overlapping and sorted;
//! 3. content wrapped in a string, raw string or comment produces exactly
//!    one token — nothing inside ever leaks out as an identifier.

use itspq_lint::{lex, TokenKind};

/// SplitMix64: tiny, deterministic, good enough to shuffle fuzz inputs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn pick(&mut self, xs: &[&'static str]) -> &'static str {
        xs[(self.next() % xs.len() as u64) as usize]
    }
}

/// Fragments chosen to stress every lexer mode and mode *boundary*.
const FRAGMENTS: &[&str] = &[
    "fn",
    "unwrap",
    "expect",
    "panic",
    "r",
    "b",
    "ident_0",
    "'a",
    "'\\n'",
    "'x'",
    "0",
    "1.5",
    "1e9",
    "0x_ff",
    "1f64",
    "\"str\"",
    "\"esc\\\"q\"",
    "\"",
    "r\"",
    "r#\"",
    "\"#",
    "r##\"",
    "\"##",
    "//",
    "// line\n",
    "/*",
    "*/",
    "/* b */",
    "/*/",
    "**/",
    "\n",
    " ",
    "\t",
    "(",
    ")",
    "{",
    "}",
    ".",
    "::",
    "==",
    "!=",
    "!",
    "#",
    "\\",
    "\u{e9}",
    "\u{4e2d}",
    ";",
    ",",
    "<",
    ">",
];

fn random_input(rng: &mut Rng) -> String {
    let len = (rng.next() % 40) as usize;
    let mut s = String::new();
    for _ in 0..len {
        s.push_str(rng.pick(FRAGMENTS));
    }
    s
}

#[test]
fn lexing_random_fragment_soup_never_panics_and_spans_are_sane() {
    let mut rng = Rng(0x1753_9D5E);
    for case in 0..5_000 {
        let src = random_input(&mut rng);
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        for t in &tokens {
            assert!(t.start < t.end, "empty span in case {case}: {src:?}");
            assert!(t.end <= src.len(), "span out of bounds in case {case}");
            assert!(
                t.start >= prev_end,
                "overlapping tokens in case {case}: {src:?}"
            );
            assert!(
                src.is_char_boundary(t.start) && src.is_char_boundary(t.end),
                "span splits a char in case {case}: {src:?}"
            );
            prev_end = t.end;
        }
    }
}

#[test]
fn lexing_random_bytes_never_panics() {
    let mut rng = Rng(0xC0FF_EE00);
    for _ in 0..2_000 {
        let len = (rng.next() % 64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (rng.next() & 0xFF) as u8).collect();
        let src = String::from_utf8_lossy(&bytes);
        let _ = lex(&src);
    }
}

#[test]
fn string_contents_never_leak_tokens() {
    let mut rng = Rng(0xDEAD_10CC);
    for _ in 0..2_000 {
        let inner = random_input(&mut rng)
            .replace(['"', '\\'], "_")
            .replace('\n', " ");
        let src = format!("\"{inner}\"");
        let tokens = lex(&src);
        assert_eq!(tokens.len(), 1, "leak from {src:?}: {tokens:?}");
        assert_eq!(tokens[0].kind, TokenKind::Str);
        assert_eq!(tokens[0].text(&src), src);
    }
}

#[test]
fn raw_string_contents_never_leak_tokens() {
    let mut rng = Rng(0x0BAD_5EED);
    for _ in 0..2_000 {
        // `"#` inside would close an r#"..."# literal; everything else —
        // quotes, backslashes, newlines — must stay inside.
        let inner = random_input(&mut rng).replace("\"#", "_");
        let src = format!("r#\"{inner}\"#");
        let tokens = lex(&src);
        assert_eq!(tokens.len(), 1, "leak from {src:?}: {tokens:?}");
        assert_eq!(tokens[0].kind, TokenKind::Str);
    }
}

#[test]
fn comment_contents_never_leak_tokens() {
    let mut rng = Rng(0x00DD_BA11);
    for _ in 0..2_000 {
        let soup = random_input(&mut rng);
        let line_inner = soup.replace('\n', " ");
        let src = format!("//x {line_inner}");
        let tokens = lex(&src);
        assert_eq!(tokens.len(), 1, "leak from {src:?}: {tokens:?}");
        assert_eq!(tokens[0].kind, TokenKind::LineComment);

        // Block comments nest; strip both delimiters so the comment stays
        // balanced, then nothing inside may escape.
        let block_inner = soup.replace("*/", "_").replace("/*", "_");
        let src = format!("/*x {block_inner} */");
        let tokens = lex(&src);
        assert_eq!(tokens.len(), 1, "leak from {src:?}: {tokens:?}");
        assert_eq!(tokens[0].kind, TokenKind::BlockComment);
    }
}

#[test]
fn c_string_contents_never_leak_tokens() {
    let mut rng = Rng(0xC5EE_D5CC);
    for _ in 0..2_000 {
        let inner = random_input(&mut rng)
            .replace(['"', '\\'], "_")
            .replace('\n', " ");
        let src = format!("c\"{inner}\"");
        let tokens = lex(&src);
        assert_eq!(tokens.len(), 1, "leak from {src:?}: {tokens:?}");
        assert_eq!(tokens[0].kind, TokenKind::Str);
        assert_eq!(tokens[0].text(&src), src);

        // The raw C-string form shields quotes and backslashes too.
        let raw_inner = random_input(&mut rng).replace("\"#", "_");
        let src = format!("cr#\"{raw_inner}\"#");
        let tokens = lex(&src);
        assert_eq!(tokens.len(), 1, "leak from {src:?}: {tokens:?}");
        assert_eq!(tokens[0].kind, TokenKind::Str);
    }
}

#[test]
fn shebang_lines_never_leak_tokens() {
    let mut rng = Rng(0x5EBA_0001);
    for _ in 0..2_000 {
        // Any first line starting `#!` (but not `#![`) is one comment token,
        // whatever soup follows the marker.
        let soup = random_input(&mut rng).replace('\n', " ");
        let first = format!("#!/{soup}");
        let src = format!("{first}\nfn f() {{}}\n");
        let tokens = lex(&src);
        assert_eq!(tokens[0].kind, TokenKind::LineComment, "src {src:?}");
        assert_eq!(tokens[0].text(&src), first, "src {src:?}");
        assert_eq!(
            tokens
                .iter()
                .filter(|t| t.kind == TokenKind::LineComment)
                .count(),
            1,
            "src {src:?}"
        );
    }
}

#[test]
fn inner_attributes_survive_the_shebang_rule() {
    // `#![…]` files (every crate root in this workspace) must keep their
    // attribute tokens.
    let src = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\nfn f() {}\n";
    let tokens = lex(src);
    assert!(tokens.iter().all(|t| t.kind != TokenKind::LineComment));
}

#[test]
fn truncated_sources_never_panic() {
    // Cut a gnarly-but-valid source at every char boundary; the lexer must
    // survive every prefix (unterminated strings, comments, raw strings).
    let src = r###"fn f() { let s = r##"raw "# inside"##; /* a /* b */ c */
        let c = '\''; let t = "esc \" done"; } // trailing"###;
    for (i, _) in src.char_indices() {
        let _ = lex(&src[..i]);
    }
    let _ = lex(src);
}
