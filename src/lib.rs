//! # itspq-repro
//!
//! Umbrella crate of the ITSPQ reproduction — *Shortest Path Queries for
//! Indoor Venues with Temporal Variations* (Liu et al., ICDE 2020).
//!
//! It re-exports the workspace crates so that examples and downstream users
//! can depend on a single crate:
//!
//! * [`time`] — times of day, ATIs, checkpoints, walking speed;
//! * [`geom`] — 2-D geometry and rectilinear decomposition;
//! * [`space`] — the indoor-space model (partitions, doors, topology,
//!   distance matrices) and the paper's running example;
//! * [`core`] — the IT-Graph and the ITSPQ query engines (ITG/S, ITG/A),
//!   baselines, extensions and the concurrent
//!   [`VenueServer`](itspq_core::VenueServer) front-end;
//! * [`synthetic`] — the paper's synthetic workload (mall floorplans, ATI
//!   generation, query instances).
//!
//! See `examples/quickstart.rs` for a guided tour.
//!
//! # Example
//!
//! The paper's Example 1 through the umbrella prelude: at 9:00 the 12 m
//! route through d18 wins (the 10 m shortcut crosses the private v15), and
//! at 23:30 no valid route remains.
//!
//! ```
//! use itspq_repro::prelude::*;
//! use itspq_repro::space::paper_example;
//!
//! let ex = paper_example::build();
//! let engine = SynEngine::new(ItGraph::new(ex.space.clone()), ItspqConfig::default());
//!
//! let morning = engine.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(9, 0)));
//! assert!((morning.path.expect("feasible at 9:00").length - 12.0).abs() < 1e-9);
//!
//! let night = engine.query(&Query::new(ex.p3, ex.p4, TimeOfDay::hm(23, 30)));
//! assert!(night.path.is_none());
//! ```

pub use indoor_geom as geom;
pub use indoor_space as space;
pub use indoor_synthetic as synthetic;
pub use indoor_time as time;
pub use itspq_core as core;

/// Convenience prelude bringing the most common types into scope.
pub mod prelude {
    pub use indoor_space::{
        DoorId, DoorKind, IndoorPoint, IndoorSpace, PartitionId, PartitionKind, VenueBuilder,
    };
    pub use indoor_time::{
        AtiList, CheckpointSet, DurationSecs, Interval, TimeOfDay, Timestamp, Velocity,
        WALKING_SPEED,
    };
    pub use itspq_core::{
        AsynEngine, AsynMode, BatchStats, BatchStrategy, DoorHop, ExpandPolicy, ItGraph,
        ItspqConfig, Path, Query, QueryError, QueryOutcome, SearchStats, ServeMethod, ServerConfig,
        SynEngine, VenueServer,
    };
}
